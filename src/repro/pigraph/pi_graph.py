"""The partition-interaction (PI) graph.

Nodes are the phase-1 partitions; a directed edge ``(R_i, R_j)`` stands for
the set of candidate tuples ``(s, d) ∈ H`` with ``s ∈ R_i`` and ``d ∈ R_j``
and is weighted by the number of such tuples.  Parsing every PI edge —
with at most two partitions resident at a time — computes every similarity
in ``H``; the traversal heuristics in :mod:`repro.pigraph.traversal` decide
the parsing order so as to minimise partition load/unload operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.graph.digraph import CSRDiGraph
from repro.tuples.hash_table import TupleHashTable
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class PIEdge:
    """One directed PI-graph edge: tuples whose source partition is ``src``."""

    src: int
    dst: int
    weight: int = 1

    def endpoints(self) -> Tuple[int, int]:
        return (self.src, self.dst)


class PIGraph:
    """Directed, weighted graph over partition ids ``0..m-1``."""

    def __init__(self, num_partitions: int):
        check_positive_int(num_partitions, "num_partitions")
        self._m = num_partitions
        self._weights: Dict[Tuple[int, int], int] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_tuple_table(cls, table: TupleHashTable, num_partitions: int) -> "PIGraph":
        """PI graph implied by the bucketed hash table ``H`` (phase 3 proper)."""
        graph = cls(num_partitions)
        for (src, dst), count in table.bucket_sizes().items():
            graph.add_edge(src, dst, weight=count)
        return graph

    @classmethod
    def from_digraph(cls, graph: CSRDiGraph) -> "PIGraph":
        """Treat an arbitrary directed graph as a PI graph.

        This is how the paper's Table 1 is produced: "if the PI graph
        structure were to resemble these networks" — each SNAP dataset is
        used directly as the PI graph on which the traversal heuristics are
        compared.
        """
        pi = cls(graph.num_vertices)
        edges = graph.edges_array()
        for src, dst in edges:
            pi.add_edge(int(src), int(dst), weight=1)
        return pi

    def add_edge(self, src: int, dst: int, weight: int = 1) -> None:
        """Add (or accumulate weight onto) the PI edge ``src -> dst``."""
        if not (0 <= src < self._m and 0 <= dst < self._m):
            raise IndexError(f"partition pair ({src}, {dst}) out of range for m={self._m}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        key = (src, dst)
        self._weights[key] = self._weights.get(key, 0) + weight

    # -- queries -------------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return self._m

    @property
    def num_edges(self) -> int:
        return len(self._weights)

    @property
    def total_weight(self) -> int:
        return sum(self._weights.values())

    def has_edge(self, src: int, dst: int) -> bool:
        return (src, dst) in self._weights

    def weight(self, src: int, dst: int) -> int:
        return self._weights.get((src, dst), 0)

    def edges(self) -> List[PIEdge]:
        """All PI edges sorted by (src, dst)."""
        return [PIEdge(src, dst, weight) for (src, dst), weight in sorted(self._weights.items())]

    def edges_of(self, partition: int) -> List[PIEdge]:
        """Edges incident to ``partition`` in either direction (sorted)."""
        out = []
        for (src, dst), weight in sorted(self._weights.items()):
            if src == partition or dst == partition:
                out.append(PIEdge(src, dst, weight))
        return out

    def neighbors(self, partition: int) -> Set[int]:
        """Partitions adjacent to ``partition`` in either direction (excluding itself)."""
        result: Set[int] = set()
        for src, dst in self._weights:
            if src == partition and dst != partition:
                result.add(dst)
            elif dst == partition and src != partition:
                result.add(src)
        return result

    def degree(self, partition: int) -> int:
        """Number of PI edges incident to ``partition`` (self-edges count once)."""
        return sum(1 for (src, dst) in self._weights if src == partition or dst == partition)

    def weighted_degree(self, partition: int) -> int:
        """Total tuple count on edges incident to ``partition``."""
        return sum(weight for (src, dst), weight in self._weights.items()
                   if src == partition or dst == partition)

    def degree_array(self) -> np.ndarray:
        degrees = np.zeros(self._m, dtype=np.int64)
        for src, dst in self._weights:
            degrees[src] += 1
            if dst != src:
                degrees[dst] += 1
        return degrees

    def active_partitions(self) -> List[int]:
        """Partitions that appear on at least one PI edge."""
        seen: Set[int] = set()
        for src, dst in self._weights:
            seen.add(src)
            seen.add(dst)
        return sorted(seen)

    def adjacency(self) -> Dict[int, Dict[int, int]]:
        """Undirected adjacency view: ``{partition: {neighbor: total weight}}``.

        Both edge directions between a pair are merged because the residency
        requirement (load both partitions) is symmetric.
        """
        adj: Dict[int, Dict[int, int]] = {p: {} for p in range(self._m)}
        for (src, dst), weight in self._weights.items():
            adj[src][dst] = adj[src].get(dst, 0) + weight
            if src != dst:
                adj[dst][src] = adj[dst].get(src, 0) + weight
        return adj

    def __repr__(self) -> str:
        return (f"PIGraph(num_partitions={self._m}, num_edges={self.num_edges}, "
                f"total_weight={self.total_weight})")
