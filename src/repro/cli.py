"""Command-line interface for the reproduction experiments.

Run as ``python -m repro <command>``.  Each command wraps one of the
experiment runners in :mod:`repro.bench.experiments` (the same code paths the
benchmark suite uses) and prints a human-readable table, so the paper's
results can be regenerated without going through pytest.

Commands
--------
``datasets``    list the six synthetic dataset stand-ins
``table1``      reproduce Table 1 (PI traversal heuristics)
``pipeline``    run the five-phase engine and print the per-phase breakdown
``heuristics``  compare all traversal heuristics (incl. extensions) on a dataset
``memory``      sweep the number of partitions (memory pressure)
``disks``       compare the HDD and SSD device models
``quality``     engine vs NN-Descent vs brute force recall
``serve``       run the always-on serving runtime under simulated load
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench import experiments as exp
from repro.graph.datasets import TABLE1_ORDER, dataset_summary
from repro.utils.logging import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scaling KNN Computation over Large Graphs on a PC' "
                    "(Middleware 2014).",
    )
    parser.add_argument("--verbose", action="store_true", help="enable console logging")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the synthetic dataset stand-ins")

    table1 = sub.add_parser("table1", help="reproduce Table 1")
    table1.add_argument("--datasets", nargs="*", default=None, choices=TABLE1_ORDER,
                        help="subset of datasets (default: all six)")
    table1.add_argument("--seed", type=int, default=None,
                        help="override the deterministic dataset seed")

    pipeline = sub.add_parser("pipeline", help="run the five-phase engine (Figure 1)")
    pipeline.add_argument("--users", type=int, default=1500)
    pipeline.add_argument("--k", type=int, default=10)
    pipeline.add_argument("--partitions", type=int, default=6)
    pipeline.add_argument("--iterations", type=int, default=2)
    pipeline.add_argument("--heuristic", default="degree-low-high")
    pipeline.add_argument("--seed", type=int, default=11)

    heuristics = sub.add_parser("heuristics", help="compare traversal heuristics")
    heuristics.add_argument("--dataset", default="gnutella", choices=TABLE1_ORDER)
    heuristics.add_argument("--seed", type=int, default=None)

    memory = sub.add_parser("memory", help="partition-count (memory pressure) sweep")
    memory.add_argument("--users", type=int, default=1200)
    memory.add_argument("--partitions", type=int, nargs="*", default=[2, 4, 8, 16])
    memory.add_argument("--seed", type=int, default=5)

    disks = sub.add_parser("disks", help="HDD vs SSD simulated I/O time")
    disks.add_argument("--users", type=int, default=1200)
    disks.add_argument("--partitions", type=int, default=8)
    disks.add_argument("--seed", type=int, default=5)

    quality = sub.add_parser("quality", help="engine vs NN-Descent vs brute force")
    quality.add_argument("--users", type=int, default=600)
    quality.add_argument("--k", type=int, default=10)
    quality.add_argument("--iterations", type=int, default=4)
    quality.add_argument("--seed", type=int, default=3)

    serve = sub.add_parser(
        "serve", help="run the always-on serving runtime under simulated load "
                      "(SIGTERM/SIGINT drain gracefully)")
    serve.add_argument("--users", type=int, default=2000)
    serve.add_argument("--dim", type=int, default=16)
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--partitions", type=int, default=8)
    serve.add_argument("--duration", type=float, default=10.0,
                       help="seconds of simulated load to run")
    serve.add_argument("--clients", type=int, default=4,
                       help="concurrent reader threads")
    serve.add_argument("--update-batch", type=int, default=50,
                       help="profile changes per writer batch")
    serve.add_argument("--admission-capacity", type=int, default=4096,
                       help="max pending changes before load is shed")
    serve.add_argument("--deadline-ms", type=float, default=1000.0,
                       help="per-query deadline in milliseconds")
    serve.add_argument("--seed", type=int, default=11)
    serve.add_argument("--workdir", default=None,
                       help="durable state directory (default: a tempdir)")

    return parser


# -- command implementations ---------------------------------------------------

def _cmd_datasets(_: argparse.Namespace) -> int:
    print(dataset_summary())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = exp.run_table1(datasets=args.datasets, seed=args.seed)
    print(exp.format_table1(rows))
    print("\npaper-reported values:")
    for row in rows:
        print(f"  {row.display_name:<12} {row.paper_operations}")
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    summary = exp.run_pipeline_phase_breakdown(
        num_users=args.users, k=args.k, num_partitions=args.partitions,
        num_iterations=args.iterations, heuristic=args.heuristic, seed=args.seed)
    print("per-phase seconds:")
    for phase, seconds in summary["phase_seconds"].items():
        print(f"  {phase:<20} {seconds:8.3f}s")
    print(f"similarity evaluations : {summary['total_similarity_evaluations']}")
    print(f"load/unload operations : {summary['total_load_unload_operations']}")
    print(f"simulated I/O seconds  : {summary['simulated_io_seconds']:.3f}")
    return 0


def _cmd_heuristics(args: argparse.Namespace) -> int:
    results = exp.run_heuristic_sweep(args.dataset, seed=args.seed)
    print(f"{'heuristic':<18} {'load/unload ops':>16}")
    for name in sorted(results, key=lambda n: results[n].load_unload_operations):
        print(f"{name:<18} {results[name].load_unload_operations:>16}")
    return 0


def _cmd_memory(args: argparse.Namespace) -> int:
    rows = exp.run_memory_budget_sweep(num_users=args.users,
                                       partition_counts=tuple(args.partitions),
                                       seed=args.seed)
    print(f"{'partitions':>10} {'ops':>10} {'bytes read':>14} {'sim I/O s':>10}")
    for row in rows:
        print(f"{row['num_partitions']:>10} {row['load_unload_operations']:>10} "
              f"{row['bytes_read']:>14} {row['simulated_io_seconds']:>10.3f}")
    return 0


def _cmd_disks(args: argparse.Namespace) -> int:
    rows = exp.run_disk_model_comparison(num_users=args.users,
                                         num_partitions=args.partitions, seed=args.seed)
    print(f"{'device':>8} {'sim I/O s':>12} {'bytes read':>14} {'ops':>8}")
    for row in rows:
        print(f"{row['disk_model']:>8} {row['simulated_io_seconds']:>12.3f} "
              f"{row['bytes_read']:>14} {row['load_unload_operations']:>8}")
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    summary = exp.run_quality_comparison(num_users=args.users, k=args.k,
                                         num_iterations=args.iterations, seed=args.seed)
    recalls = ", ".join(f"{r:.3f}" for r in summary["engine_recalls"])
    print(f"engine recall per iteration : {recalls}")
    print(f"NN-Descent recall           : {summary['nn_descent_recall']:.3f}")
    print(f"engine similarity evals     : {summary['engine_similarity_evaluations']}")
    print(f"NN-Descent similarity evals : {summary['nn_descent_similarity_evaluations']}")
    print(f"brute-force evals           : {summary['brute_force_evaluations']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    from random import Random

    from repro.core.config import EngineConfig
    from repro.service import LoadGenerator, ServingRuntime, dense_set_batch
    from repro.similarity.workloads import generate_dense_profiles

    profiles = generate_dense_profiles(args.users, dim=args.dim,
                                       num_communities=8, seed=args.seed)
    config = EngineConfig(k=args.k, num_partitions=args.partitions,
                          durable=True, seed=args.seed)
    service = ServingRuntime(profiles, config, workdir=args.workdir,
                             admission_capacity=args.admission_capacity,
                             default_deadline_seconds=args.deadline_ms / 1000.0)
    interrupted = {"flag": False}

    def _drain_handler(signum, _frame):
        print(f"\nsignal {signum}: draining gracefully "
              "(admission closed, flushing WAL, sealing final epoch)")
        interrupted["flag"] = True

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _drain_handler)
    try:
        service.start()
        print(f"serving {args.users} users (k={args.k}) from epoch "
              f"{service.current_epoch}; load: {args.clients} clients for "
              f"{args.duration:.0f}s (ctrl-c drains gracefully)")
        rng = Random(args.seed)
        generator = LoadGenerator(service, num_users=args.users,
                                  num_readers=args.clients,
                                  deadline_seconds=args.deadline_ms / 1000.0,
                                  seed=args.seed)

        def writer():
            if not interrupted["flag"]:
                service.submit_updates(dense_set_batch(
                    args.users, args.dim, args.update_batch, rng))

        remaining = args.duration
        slice_seconds = min(1.0, args.duration)
        while remaining > 0 and not interrupted["flag"]:
            report = generator.run_phase("serve", min(slice_seconds, remaining),
                                         writer=writer)
            remaining -= slice_seconds
            health = service.health()
            print(f"  epoch {health.serving_epoch:>3}  "
                  f"qps {report.queries / max(report.duration_seconds, 1e-9):>8.0f}  "
                  f"p99 {report.p99_query_seconds * 1000:>7.2f}ms  "
                  f"failures {report.query_failures:>3}  "
                  f"shed {report.shed_changes:>5}  "
                  f"pending {health.pending_updates:>5}  "
                  f"state {health.refresh_state}")
        service.stop(drain=True)
        stats = service.stats()
        print("drained: final epoch "
              f"{service.engine.latest_sealed_epoch()[0]}, "
              f"{stats['queries_served']} queries served, "
              f"{stats['query_failures']} failed, "
              f"{stats['accepted_changes']} changes applied, "
              f"{stats['shed_changes']} shed, "
              f"{stats['restarts']} refresh restarts")
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        service.close()
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "table1": _cmd_table1,
    "pipeline": _cmd_pipeline,
    "heuristics": _cmd_heuristics,
    "memory": _cmd_memory,
    "disks": _cmd_disks,
    "quality": _cmd_quality,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        enable_console_logging()
    return _COMMANDS[args.command](args)


if __name__ == "__main__":       # pragma: no cover - exercised via __main__.py
    sys.exit(main())
