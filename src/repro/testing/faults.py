"""Deterministic, scriptable fault injection.

A :class:`FaultPlan` is a schedule of failures that the runtime consults at
well-known hook sites:

* **named crash points** — ``plan.point("commit.before_rename")`` raises
  :class:`InjectedCrash` on the scheduled occurrence, simulating the process
  dying at exactly that instruction (the test then abandons the engine and
  drives :meth:`KNNEngine.recover`);
* **file-operation failures** — ``plan.file_op("rename", path)`` raises
  :class:`InjectedIOError` for a scheduled ``(op, filename-substring)``
  match, modelling a failed write/rename/hard-link;
* **file truncation** — ``plan.after_file_op("write", path)`` truncates the
  just-written file to a scheduled byte count, modelling torn writes and
  on-disk corruption (checksum verification must catch it);
* **worker faults** — the supervised scoring pool asks
  ``plan.take_worker_fault()`` once per score attempt; a scheduled entry
  kills (``os._exit``) or hangs (``time.sleep``) the worker executing one
  shard, exercising respawn, watchdog and serial degradation.

Every schedule is explicit and counted, so a plan injected through
``EngineConfig.fault_plan`` reproduces the exact same failure sequence on
every run.  ``seed`` additionally drives :meth:`FaultPlan.crash_at_random`,
which picks crash points deterministically from a candidate list — useful
for randomized-but-reproducible crash sweeps.

The plan records everything it fired in :attr:`FaultPlan.fired`, so tests
can assert that an injected fault actually triggered (a crash point that
never fires usually means the hook site regressed).
"""

from __future__ import annotations

import os
import random
import threading
from typing import List, Optional, Sequence, Tuple


#: Engine-level crash points: every ``fault_point``/``plan.point`` literal
#: on the iteration, WAL, store and commit paths.  This tuple is the
#: registry the invariant lint (``python -m repro.analysis``) checks the
#: production tree against — a hook whose literal is not listed here is a
#: build error, as is a listed point with no production call site or no
#: test reference.  Keep the names grouped by the path they live on; the
#: crash matrix (``tests/test_crash_matrix.py``) crashes the engine at
#: each of these and proves recovery.
ITERATION_CRASH_POINTS = (
    # iteration loop (engine.run_iterations)
    "iteration.begin",
    "phase4.step",
    "phase4.done",
    "phase5.before_apply",
    # update queue / write-ahead log
    "wal.appended",
    # profile store writes
    "store.dense_rows_written",
    "store.journal_appended",
    # epoch commit protocol (engine._commit_iteration)
    "commit.begin",
    "commit.before_rename",
    "commit.committed",
    "commit.before_wal_truncate",
    "commit.done",
)

#: Service-level crash points consulted by the serving runtime
#: (:mod:`repro.service`), alongside the engine-level points the crash
#: matrix exercises.  ``service.admission`` fires on the ingestion path
#: right before a batch enters the update queue (client thread);
#: ``service.before_swap``/``service.after_swap`` bracket the atomic
#: serving-snapshot swap in the background refresh loop; ``service.drain``
#: fires at the start of a graceful shutdown, after admission has closed
#: but before the final epoch is sealed.  The service chaos wall
#: (``tests/test_service_chaos.py``) kills the runtime at each of these
#: and asserts queries keep being answered from the last committed
#: snapshot while recovery brings the refresh loop back.
SERVICE_CRASH_POINTS = (
    "service.admission",
    "service.before_swap",
    "service.after_swap",
    "service.drain",
)


class InjectedCrash(RuntimeError):
    """Raised by :meth:`FaultPlan.point` to simulate a crash at a named point."""

    def __init__(self, point: str, occurrence: int):
        super().__init__(f"injected crash at point {point!r} (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


class InjectedIOError(OSError):
    """Raised by :meth:`FaultPlan.file_op` to simulate a failed file operation."""

    def __init__(self, op: str, path: str):
        super().__init__(f"injected {op} failure for {path}")
        self.op = op
        self.path = path


class FaultPlan:
    """A deterministic schedule of crashes, I/O failures and worker faults.

    All scheduling methods return ``self`` so plans chain::

        plan = (FaultPlan()
                .crash_at("commit.before_rename", occurrence=2)
                .kill_worker(call=1, shard=0))

    The plan is thread-safe (hook sites may be reached from worker threads)
    and intentionally **not** deep-copied by ``dataclasses.asdict`` — a
    plan is live runtime state shared between the config and the hook
    sites, never part of a serialised manifest.
    """

    def __init__(self, seed: Optional[int] = None):
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        # point name -> set of occurrence numbers (1-based) that crash
        self._crashes: dict = {}
        # (op, substring) -> list of occurrence numbers that fail
        self._io_failures: dict = {}
        # (op, substring) -> list of (occurrence, keep_bytes)
        self._truncations: dict = {}
        # score-call number (1-based, attempts included) -> (mode, shard, seconds)
        self._worker_faults: dict = {}
        self._worker_calls = 0
        # hit counters per point / per (op, substring)
        self._point_hits: dict = {}
        self._op_hits: dict = {}
        #: Chronological log of every fault that fired: ``(kind, detail)``.
        self.fired: List[Tuple[str, str]] = []

    # a plan travels inside EngineConfig, whose asdict()/replace() deep-copy
    # field values; the live schedule (locks, counters) must stay shared
    def __deepcopy__(self, memo) -> "FaultPlan":
        return self

    def __copy__(self) -> "FaultPlan":
        return self

    # -- scheduling ---------------------------------------------------------

    def crash_at(self, point: str, occurrence: int = 1) -> "FaultPlan":
        """Crash (raise :class:`InjectedCrash`) on the n-th hit of ``point``."""
        if occurrence < 1:
            raise ValueError("occurrence is 1-based")
        self._crashes.setdefault(point, set()).add(int(occurrence))
        return self

    def crash_at_random(self, points: Sequence[str], count: int = 1,
                        max_occurrence: int = 3) -> "FaultPlan":
        """Schedule ``count`` seeded-random crashes drawn from ``points``.

        The choice depends only on the constructor ``seed`` and the call
        order, so a sweep is reproducible from its seed alone.
        """
        for _ in range(count):
            point = self._rng.choice(list(points))
            self.crash_at(point, occurrence=self._rng.randint(1, max_occurrence))
        return self

    def fail_file_op(self, op: str, match: str = "",
                     occurrence: int = 1) -> "FaultPlan":
        """Fail the n-th ``op`` (``write``/``rename``/``link``) on a file
        whose name contains ``match`` (the default matches any file)."""
        if occurrence < 1:
            raise ValueError("occurrence is 1-based")
        self._io_failures.setdefault((op, match), []).append(int(occurrence))
        return self

    def truncate_file(self, op: str, match: str = "", keep_bytes: int = 0,
                      occurrence: int = 1) -> "FaultPlan":
        """Truncate the file of the n-th matching ``op`` to ``keep_bytes``
        right after the operation completes (a torn/corrupt write)."""
        if occurrence < 1:
            raise ValueError("occurrence is 1-based")
        self._truncations.setdefault((op, match), []).append(
            (int(occurrence), int(keep_bytes)))
        return self

    def kill_worker(self, call: int = 1, shard: int = 0) -> "FaultPlan":
        """Kill (``os._exit``) the worker scoring ``shard`` of the n-th pool
        score attempt.  Retries count as fresh attempts, so scheduling
        calls ``1..N`` forces ``N`` consecutive failures."""
        if call < 1:
            raise ValueError("call is 1-based")
        self._worker_faults[int(call)] = ("kill", int(shard), 0.0)
        return self

    def hang_worker(self, call: int = 1, shard: int = 0,
                    seconds: float = 3600.0) -> "FaultPlan":
        """Hang the worker scoring ``shard`` of the n-th pool score attempt
        for ``seconds`` (exercises the per-shard watchdog timeout)."""
        if call < 1:
            raise ValueError("call is 1-based")
        self._worker_faults[int(call)] = ("hang", int(shard), float(seconds))
        return self

    # -- runtime hooks ------------------------------------------------------

    def point(self, name: str) -> None:
        """Hook: count a crash-point hit; raise when this hit is scheduled."""
        with self._lock:
            hit = self._point_hits.get(name, 0) + 1
            self._point_hits[name] = hit
            scheduled = self._crashes.get(name)
            fire = scheduled is not None and hit in scheduled
            if fire:
                self.fired.append(("crash", f"{name}#{hit}"))
        if fire:
            raise InjectedCrash(name, hit)

    def file_op(self, op: str, path: os.PathLike) -> None:
        """Hook: called *before* a file operation; raises when scheduled."""
        name = os.path.basename(os.fspath(path))
        with self._lock:
            for (sched_op, match), occurrences in self._io_failures.items():
                if sched_op != op or match not in name:
                    continue
                key = (op, match)
                hit = self._op_hits.get(key, 0) + 1
                self._op_hits[key] = hit
                if hit in occurrences:
                    self.fired.append(("io", f"{op}:{name}#{hit}"))
                    raise InjectedIOError(op, os.fspath(path))

    def after_file_op(self, op: str, path: os.PathLike) -> None:
        """Hook: called *after* a file operation; applies scheduled truncation."""
        name = os.path.basename(os.fspath(path))
        truncate_to: Optional[int] = None
        with self._lock:
            for (sched_op, match), entries in self._truncations.items():
                if sched_op != op or match not in name:
                    continue
                key = ("after:" + op, match)
                hit = self._op_hits.get(key, 0) + 1
                self._op_hits[key] = hit
                for occurrence, keep_bytes in entries:
                    if occurrence == hit:
                        truncate_to = keep_bytes
                        self.fired.append(
                            ("truncate", f"{op}:{name}#{hit}->{keep_bytes}B"))
        if truncate_to is not None:
            with open(path, "r+b") as handle:
                handle.truncate(truncate_to)

    def take_worker_fault(self) -> Optional[Tuple[str, int, float]]:
        """Hook: the pool calls this once per score attempt; returns the
        scheduled ``(mode, shard, seconds)`` for this attempt or ``None``.
        The entry is consumed — a retry of the same shard set is a new
        attempt with its own (possibly absent) fault."""
        with self._lock:
            self._worker_calls += 1
            fault = self._worker_faults.pop(self._worker_calls, None)
            if fault is not None:
                self.fired.append(
                    ("worker", f"{fault[0]}@call{self._worker_calls}"
                               f"/shard{fault[1]}"))
            return fault

    # -- observability ------------------------------------------------------

    def hits(self, point: str) -> int:
        """How many times a named crash point has been reached so far."""
        with self._lock:
            return self._point_hits.get(point, 0)

    def scheduled_crashes(self) -> List[Tuple[str, int]]:
        """The ``(point, occurrence)`` pairs currently scheduled, sorted."""
        with self._lock:
            return sorted((point, occurrence)
                          for point, occurrences in self._crashes.items()
                          for occurrence in occurrences)

    def fired_kinds(self) -> List[str]:
        with self._lock:
            return [kind for kind, _ in self.fired]


def fault_point(plan: Optional[FaultPlan], name: str) -> None:
    """Convenience: ``plan.point(name)`` tolerating ``plan is None``."""
    if plan is not None:
        plan.point(name)


#: Worker-side helper — executed inside a pool worker process when the
#: coordinator attached a fault directive to a shard task.
def apply_worker_fault(fault: Optional[Tuple[str, int, float]]) -> None:
    if fault is None:
        return
    mode, _shard, seconds = fault
    if mode == "kill":
        os._exit(43)  # simulate a hard worker death (no cleanup, no excepthook)
    if mode == "hang":
        import time
        time.sleep(seconds)
