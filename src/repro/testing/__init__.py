"""Deterministic fault injection for robustness tests and benchmarks.

The package is shipped with the library (not under ``tests/``) so that the
engine, the stores and the scoring pool can consult an injected
:class:`~repro.testing.faults.FaultPlan` through ``EngineConfig.fault_plan``
without importing anything test-only.
"""

from repro.testing.faults import (ITERATION_CRASH_POINTS,
                                  SERVICE_CRASH_POINTS, FaultPlan,
                                  InjectedCrash, InjectedIOError)

__all__ = ["FaultPlan", "InjectedCrash", "InjectedIOError",
           "ITERATION_CRASH_POINTS", "SERVICE_CRASH_POINTS"]
