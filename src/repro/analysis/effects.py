"""Primitive side-effect detection for one function body.

The purity and lock rules both need to know what a function *does* before
they can reason about what its callers inherit: the purity rule propagates
the impurity categories below through the call graph, the lock rule
propagates ``blocking``.  Detection is syntactic — a canonicalised dotted
call chain (import aliases rewritten, so ``np.random`` and
``numpy.random`` are one thing) matched against the contract lists.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.analysis.sources import (CodeIndex, FunctionInfo, dotted_chain,
                                    root_name)

#: Impurity categories the purity rule rejects.
IMPURE_CATEGORIES = ("time", "random", "env", "io", "global-write")

_TIME_CALLS = ("time.time", "time.monotonic", "time.perf_counter",
               "time.process_time", "time.sleep", "time.monotonic_ns",
               "time.time_ns", "time.perf_counter_ns")
_RANDOM_PREFIXES = ("random.", "numpy.random.", "secrets.")
_RANDOM_CALLS = ("os.urandom", "uuid.uuid4", "uuid.uuid1")
_ENV_CALLS = ("os.getenv", "os.environ.get", "os.getcwd", "platform.node")
_IO_CALLS = ("open", "os.replace", "os.rename", "os.link", "os.remove",
             "os.unlink", "os.fsync", "os.makedirs", "os.mkdir", "os.rmdir",
             "os.stat", "os.listdir", "os.scandir", "print")
_IO_PREFIXES = ("shutil.", "tempfile.", "pathlib.", "mmap.")
_IO_NUMPY = ("numpy.memmap", "numpy.fromfile", "numpy.save", "numpy.load",
             "numpy.savetxt", "numpy.loadtxt")
#: Path/file methods that mean I/O regardless of the (unresolvable) receiver.
_IO_METHODS = frozenset({
    "read_text", "read_bytes", "write_text", "write_bytes", "tofile",
    "mkdir", "unlink", "rmdir", "touch", "rename", "replace", "fsync",
    "flush", "readline", "readlines", "writelines",
})

#: Calls that park the calling thread — forbidden under a hot lock.
_BLOCKING_CALLS = ("os.fsync", "time.sleep", "os.wait", "os.waitpid",
                   "select.select")
_BLOCKING_PREFIXES = ("subprocess.",)
#: ``x.join()`` / ``x.wait()`` block when the receiver looks like a thread,
#: process, pool or event; a bare ``", ".join(...)`` does not.
_BLOCKING_METHODS = frozenset({"join", "wait", "acquire", "get"})
_BLOCKING_RECEIVER_HINTS = ("thread", "proc", "pool", "worker", "event",
                            "future", "barrier", "supervisor")


@dataclass(frozen=True)
class Effect:
    """One primitive side effect found in a function body."""

    category: str        # one of IMPURE_CATEGORIES or "blocking"
    line: int
    description: str


def _chain_of(call: ast.Call, index: CodeIndex, module: str) -> Optional[str]:
    chain = dotted_chain(call.func)
    if chain is None:
        return None
    return index.canonical_chain(module, chain)


def _receiver_hint(call: ast.Call) -> str:
    """Lower-cased name of the attribute-call receiver's last segment."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return ""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr.lower()
    if isinstance(value, ast.Name):
        return value.id.lower()
    return ""


def _call_effects(call: ast.Call, index: CodeIndex, module: str,
                  resolved: Optional[FunctionInfo]) -> List[Effect]:
    effects: List[Effect] = []
    chain = _chain_of(call, index, module)
    line = call.lineno
    if chain is not None:
        if chain in _TIME_CALLS or (chain.startswith("time.")
                                    and resolved is None):
            effects.append(Effect("time", line, f"wall-clock call {chain}()"))
        if (chain in _RANDOM_CALLS
                or any(chain.startswith(p) for p in _RANDOM_PREFIXES)
                or chain == "random.Random"):
            effects.append(Effect("random", line,
                                  f"randomness source {chain}()"))
        if chain in _ENV_CALLS:
            effects.append(Effect("env", line,
                                  f"environment read {chain}()"))
        if (chain in _IO_CALLS or chain in _IO_NUMPY
                or any(chain.startswith(p) for p in _IO_PREFIXES)):
            effects.append(Effect("io", line, f"file/OS call {chain}()"))
        if (chain in _BLOCKING_CALLS
                or any(chain.startswith(p) for p in _BLOCKING_PREFIXES)):
            effects.append(Effect("blocking", line,
                                  f"blocking call {chain}()"))
    if resolved is None and isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr in _IO_METHODS:
            effects.append(Effect("io", line, f"file method .{attr}()"))
        if attr in _BLOCKING_METHODS:
            hint = _receiver_hint(call)
            if any(token in hint for token in _BLOCKING_RECEIVER_HINTS):
                effects.append(Effect(
                    "blocking", line,
                    f"blocking call .{attr}() on '{hint}'"))
    return effects


def _global_write_effects(info: FunctionInfo, index: CodeIndex) -> List[Effect]:
    effects: List[Effect] = []
    declared_global: Set[str] = set()
    local_names: Set[str] = set()
    node = info.node
    for arg_list in (node.args.args, node.args.posonlyargs,
                     node.args.kwonlyargs):
        local_names.update(arg.arg for arg in arg_list)
    if node.args.vararg:
        local_names.add(node.args.vararg.arg)
    if node.args.kwarg:
        local_names.add(node.args.kwarg.arg)
    module_bound = index.module_globals.get(info.module, set())
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            declared_global.update(sub.names)
        elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            if sub.id not in declared_global:
                local_names.add(sub.id)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            if sub.id in declared_global:
                effects.append(Effect(
                    "global-write", sub.lineno,
                    f"write to module global '{sub.id}'"))
        elif isinstance(sub, (ast.Subscript, ast.Attribute)) \
                and isinstance(sub.ctx, ast.Store):
            root = root_name(sub.value)
            if (root is not None and root in module_bound
                    and root not in local_names and root != "self"):
                effects.append(Effect(
                    "global-write", sub.lineno,
                    f"mutation of module-level object '{root}'"))
    return effects


def function_effects(info: FunctionInfo, index: CodeIndex,
                     unique_fallback: bool = False) -> List[Effect]:
    """All primitive effects of one function body (nested defs included)."""
    effects: List[Effect] = []
    for call, resolved in index.calls_of(info, unique_fallback=unique_fallback):
        effects.extend(_call_effects(call, index, info.module, resolved))
    effects.extend(_global_write_effects(info, index))
    return effects
