"""Rule ``memmap-hygiene``: writable memory maps belong to the storage layer.

The entire zero-copy story (PR 2/9) rests on one contract: everything
outside ``repro/storage`` sees profile bytes through **read-only** mmap
views.  A writable map handed to a scoring kernel or a shard worker could
silently corrupt the store underneath every other reader — no checksum
would catch it until the next verification pass, and the parity walls
would chase a phantom.  This rule rejects ``np.memmap`` opens with a
writable mode (``r+``/``w+``, or no mode at all — NumPy's default is
``r+``) and ``mmap.mmap`` opens without ``ACCESS_READ``/``PROT_READ``,
anywhere outside the allowed storage modules.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterable, List, Optional

from repro.analysis.effects import _chain_of
from repro.analysis.findings import Finding, Severity
from repro.analysis.sources import CodeIndex, dotted_chain

RULE_ID = "memmap-hygiene"

_WRITABLE_NUMPY_MODES = ("r+", "w+")
_DEFAULT_ALLOWED = ("repro.storage", "repro.storage.*")


def _numpy_memmap_mode(call: ast.Call) -> Optional[str]:
    """The mode of an ``np.memmap`` call; None means "defaulted" (r+)."""
    if len(call.args) >= 3 and isinstance(call.args[2], ast.Constant):
        return call.args[2].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            return kw.value.value
    return None


def _mmap_is_readonly(call: ast.Call, index: CodeIndex, module: str) -> bool:
    for kw in call.keywords:
        chain = dotted_chain(kw.value)
        canonical = (index.canonical_chain(module, chain)
                     if chain is not None else None)
        if kw.arg == "access" and canonical is not None:
            return canonical.endswith("ACCESS_READ")
        if kw.arg == "prot" and canonical is not None:
            return "PROT_WRITE" not in canonical
    return False  # mmap.mmap defaults to a writable shared mapping


def check(index: CodeIndex,
          allowed_modules: Iterable[str] = _DEFAULT_ALLOWED) -> List[Finding]:
    allowed = tuple(allowed_modules)
    findings: List[Finding] = []
    for source in index.sources:
        if any(fnmatch.fnmatch(source.module, pattern)
               for pattern in allowed):
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _chain_of(node, index, source.module)
            if chain == "numpy.memmap":
                mode = _numpy_memmap_mode(node)
                if mode is None or mode in _WRITABLE_NUMPY_MODES:
                    shown = mode if mode is not None else "r+ (the default)"
                    findings.append(Finding(
                        rule_id=RULE_ID, path=source.path, line=node.lineno,
                        severity=Severity.ERROR,
                        message=(f"writable np.memmap (mode={shown}) outside "
                                 "repro/storage — zero-copy views handed "
                                 "out of the storage layer must be "
                                 "read-only (mode='r')")))
            elif chain == "mmap.mmap":
                if not _mmap_is_readonly(node, index, source.module):
                    findings.append(Finding(
                        rule_id=RULE_ID, path=source.path, line=node.lineno,
                        severity=Severity.ERROR,
                        message=("writable mmap.mmap outside repro/storage "
                                 "— pass access=mmap.ACCESS_READ (or "
                                 "prot=mmap.PROT_READ) or move the map "
                                 "into the storage layer")))
    return findings
