"""Rule ``crash-point``: the crash-point registry and reality must agree.

The crash matrix (PR 6) and the service chaos wall (PR 8) only prove what
they exercise.  Three drifts silently erode that proof:

* a hook site with a literal the registry does not know — the new crash
  point exists in production but no wall will ever crash there;
* a registered point with no production call site left — the wall still
  "passes" for a hook that no longer exists (the coverage is dead);
* a registered point no test references — the point is live in production
  but nothing ever crashes it.

This rule collects every ``fault_point(plan, "…")`` and
``<fault-ish>.point("…")`` string literal from the production tree,
reads the registry (``ITERATION_CRASH_POINTS`` ∪ ``SERVICE_CRASH_POINTS``
in :mod:`repro.testing.faults`) and every string literal in ``tests/``,
and fails on all three drifts.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.sources import CodeIndex, SourceFile

RULE_ID = "crash-point"

#: An attribute call ``X.point("…")`` only counts as a crash-point hook
#: when the receiver looks like a fault plan; ``graph.point(…)`` on some
#: future geometry type must not be conscripted into the registry.
_RECEIVER_TOKENS = ("fault", "plan")


def _point_literal(call: ast.Call) -> str:
    if call.args and isinstance(call.args[-1], ast.Constant) \
            and isinstance(call.args[-1].value, str):
        return call.args[-1].value
    return ""


def production_call_sites(index: CodeIndex) -> List[Tuple[str, Path, int]]:
    """Every ``(point, file, line)`` hook site in the production tree."""
    sites: List[Tuple[str, Path, int]] = []
    for source in index.sources:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "fault_point":
                literal = _point_literal(node)
                if literal:
                    sites.append((literal, source.path, node.lineno))
            elif isinstance(func, ast.Attribute) and func.attr == "point":
                receiver = func.value
                text = ""
                if isinstance(receiver, ast.Attribute):
                    text = receiver.attr
                elif isinstance(receiver, ast.Name):
                    text = receiver.id
                if any(token in text.lower() for token in _RECEIVER_TOKENS):
                    literal = _point_literal(node)
                    if literal:
                        sites.append((literal, source.path, node.lineno))
    return sites


def test_string_literals(test_sources: Iterable[SourceFile]) -> Set[str]:
    """Every string constant appearing anywhere under ``tests/``."""
    literals: Set[str] = set()
    for source in test_sources:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                literals.add(node.value)
    return literals


def check(index: CodeIndex,
          registry: Dict[str, Tuple[Path, int]],
          test_sources: Iterable[SourceFile]) -> List[Finding]:
    """Run the crash-point rule.

    ``registry`` maps each registered point to the ``(file, line)`` of its
    registry entry, so dead-registration findings anchor to the registry
    line the fix must touch.
    """
    findings: List[Finding] = []
    sites = production_call_sites(index)
    referenced = test_string_literals(test_sources)
    seen_points: Set[str] = set()
    for point, path, line in sites:
        seen_points.add(point)
        if point not in registry:
            findings.append(Finding(
                rule_id=RULE_ID, path=path, line=line,
                severity=Severity.ERROR,
                message=(f"crash point '{point}' is not registered in "
                         "ITERATION_CRASH_POINTS or SERVICE_CRASH_POINTS "
                         "(repro/testing/faults.py) — unregistered points "
                         "are invisible to the crash matrix")))
    for point, (reg_path, reg_line) in sorted(registry.items()):
        if point not in seen_points:
            findings.append(Finding(
                rule_id=RULE_ID, path=reg_path, line=reg_line,
                severity=Severity.ERROR,
                message=(f"registered crash point '{point}' has no "
                         "production call site — remove the dead "
                         "registration or restore the hook")))
        if point not in referenced:
            findings.append(Finding(
                rule_id=RULE_ID, path=reg_path, line=reg_line,
                severity=Severity.ERROR,
                message=(f"registered crash point '{point}' is referenced "
                         "by no test — every registered point must be "
                         "exercised by the crash matrix or chaos wall")))
    return findings
