"""Rule ``durability``: durable writes go temp → flush+fsync → rename.

PR 6's recovery proof rests on a write protocol: bytes that recovery will
trust are written to a temporary file, flushed and fsynced, then published
with one atomic ``os.replace``.  A rename without the fsync can publish a
file whose pages never reached disk — the crash matrix cannot catch that
(injected crashes are process-level, not power-level), so the protocol is
enforced here instead:

* **fsyncless rename** — an ``os.replace`` whose source was written in the
  same function (``open(..., "w")``, ``.write_text``/``.write_bytes``,
  ``.tofile``) with no ``os.fsync`` call before it;
* **bare write** — a write-mode ``open`` / ``.write_text`` /
  ``.write_bytes`` in a durable module (storage, checkpoint, WAL, engine,
  service) inside a function that neither fsyncs nor renames, and is not a
  sanctioned writer.  Sanctioned writers are helpers whose durability is
  provided by an enclosing protocol — e.g. epoch content files sealed by
  ``checksums.json`` before the directory rename, or the append-only
  CRC-framed WAL whose torn tail is dropped on scan.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.effects import _chain_of  # shared canonicalisation
from repro.analysis.findings import Finding, Severity
from repro.analysis.sources import CodeIndex, FunctionInfo, root_name

RULE_ID = "durability"

_WRITE_MODES = ("w", "wb", "ab", "a", "w+", "wb+", "r+", "rb+", "a+", "ab+",
                "x", "xb")
_WRITE_METHODS = ("write_text", "write_bytes")


def _write_mode_of_open(call: ast.Call) -> Optional[str]:
    """The mode constant of an ``open``/``path.open`` call, if write-ish."""
    mode = None
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        mode = call.args[1].value
    elif (call.args and isinstance(call.func, ast.Attribute)
          and isinstance(call.args[0], ast.Constant)):
        # ``path.open("wb")`` — the path is the receiver, mode is arg 0
        mode = call.args[0].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            mode = kw.value.value
    if isinstance(mode, str) and mode in _WRITE_MODES:
        return mode
    return None


def _function_write_sites(info: FunctionInfo, index: CodeIndex
                          ) -> Tuple[Dict[str, int], List[int],
                                     List[Tuple[int, Optional[str]]]]:
    """``(written-name → first line, fsync lines, replace (line, src))``."""
    writes: Dict[str, int] = {}
    fsyncs: List[int] = []
    replaces: List[Tuple[int, Optional[str]]] = []

    def record_write(name: Optional[str], line: int) -> None:
        if name is not None and name not in writes:
            writes[name] = line

    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        chain = _chain_of(node, index, info.module)
        func = node.func
        if chain == "open" and _write_mode_of_open(node) and node.args:
            record_write(root_name(node.args[0]), node.lineno)
        elif isinstance(func, ast.Attribute):
            if func.attr == "open" and _write_mode_of_open(node):
                record_write(root_name(func.value), node.lineno)
            elif func.attr in _WRITE_METHODS:
                record_write(root_name(func.value), node.lineno)
            elif func.attr == "tofile" and node.args:
                record_write(root_name(node.args[0]), node.lineno)
        if chain == "os.fsync":
            fsyncs.append(node.lineno)
        elif chain == "os.replace" and node.args:
            replaces.append((node.lineno, root_name(node.args[0])))
    return writes, fsyncs, replaces


def check(index: CodeIndex,
          durable_modules: Iterable[str] = (),
          sanctioned_writers: Iterable[str] = ()) -> List[Finding]:
    """Run the durability rule.

    ``durable_modules`` are fnmatch patterns over dotted module names
    (``repro.storage.*``); ``sanctioned_writers`` are function qualnames
    (or unique suffixes) whose bare writes are covered by an enclosing
    durability protocol.
    """
    durable = tuple(durable_modules)
    sanctioned = set(sanctioned_writers)
    findings: List[Finding] = []

    def is_durable(module: str) -> bool:
        return any(fnmatch.fnmatch(module, pattern) for pattern in durable)

    def is_sanctioned(qualname: str) -> bool:
        return (qualname in sanctioned
                or any(qualname.endswith("." + name) for name in sanctioned))

    for qualname, info in index.functions.items():
        writes, fsyncs, replaces = _function_write_sites(info, index)
        for line, source_name in replaces:
            if source_name is None or source_name not in writes:
                continue
            if not any(fsync_line < line for fsync_line in fsyncs):
                findings.append(Finding(
                    rule_id=RULE_ID, path=info.source.path, line=line,
                    severity=Severity.ERROR,
                    message=(f"os.replace publishes '{source_name}' which "
                             f"{qualname.rsplit('.', 1)[-1]} wrote without "
                             "a preceding flush+fsync — a crash can "
                             "publish pages that never reached disk "
                             "(durable writes go temp -> fsync -> rename)")))
        if not is_durable(info.module) or is_sanctioned(qualname):
            continue
        if fsyncs or replaces:
            continue  # the function handles durability explicitly
        for name, line in writes.items():
            findings.append(Finding(
                rule_id=RULE_ID, path=info.source.path, line=line,
                severity=Severity.ERROR,
                message=(f"bare write to '{name}' in durable module "
                         f"{info.module} outside the sanctioned helpers — "
                         "route it through an atomic-replace helper or "
                         "sanction it with a documented reason")))
    return findings
