"""Invariant lint: AST-based enforcement of this repo's correctness contracts.

Nine PRs of growth left the middleware's correctness resting on
*conventions*: schedulers must be pure functions of their inputs, the
serving layer must never block while holding a hot lock, every named crash
point must be registered and exercised, every durable write must go
temp→fsync→rename, and writable memory maps belong to the storage layer
alone.  This package checks those conventions mechanically, from source
alone (stdlib :mod:`ast`; the analyzed code is never imported), so the CI
gate and the perf-suite preflight can refuse a tree that violates them.

Five rules (see ``docs/static-analysis.md`` for the full contracts):

``purity``
    Call-graph walk from the :data:`repro.pigraph.scheduler.PURE_FUNCTIONS`
    manifest rejecting reachable wall-clock, randomness, environment reads,
    file I/O and module-global writes.
``lock-discipline``
    Builds a holds→acquires graph over every catalogued lock; fails on
    acquisition-order cycles and on known-blocking calls reachable under a
    hot serving-path lock.
``crash-point``
    Every ``fault_point``/``plan.point`` string literal must be registered
    in ``ITERATION_CRASH_POINTS`` ∪ ``SERVICE_CRASH_POINTS``; every
    registered point needs a production call site and a test reference.
``durability``
    ``os.replace`` of a file written in the same function requires a
    preceding flush+fsync; bare writes in durable modules outside the
    sanctioned helpers are flagged.
``memmap-hygiene``
    Writable ``np.memmap``/``mmap.mmap`` opens outside ``repro/storage``
    are rejected (the zero-copy read-only-view contract).

Findings are suppressed inline with ``# repro: allow[rule-id] reason`` —
the reason is mandatory.  Run ``python -m repro.analysis --strict`` to lint
the tree; exit status 1 means unsuppressed findings.
"""

from repro.analysis.findings import Finding, Severity
from repro.analysis.runner import AnalysisConfig, AnalysisReport, analyze

RULE_IDS = (
    "purity",
    "lock-discipline",
    "crash-point",
    "durability",
    "memmap-hygiene",
)

__all__ = ["AnalysisConfig", "AnalysisReport", "Finding", "RULE_IDS",
           "Severity", "analyze"]
