"""Source indexing and call resolution for the invariant-lint rules.

The analyzer never imports the code it checks — everything is derived from
the AST of the source tree.  This module builds the shared index the rules
query: every module's functions, classes, methods and import aliases, plus
a best-effort call resolver.

Resolution is deliberately layered by confidence:

* **strict** — a plain name call resolved in its own module or through an
  explicit import, a ``self.method()`` call resolved on the enclosing
  class, or a ``ClassName.method()`` call resolved through an imported
  class.  Used by the purity rule, where a wrong edge would reject a
  genuinely pure function.
* **unique-name fallback** — an attribute call on an unresolvable receiver
  (``engine.enqueue_profile_changes(...)``) resolves when exactly one
  function in the whole index bears that name.  Used by the lock and
  blocking analyses, where a missed edge hides a real deadlock; the small
  false-edge risk there surfaces as a suppressible finding, not a silent
  pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Attribute names too generic for the unique-name fallback: resolving
#: ``mapping.get(...)`` to some class's ``get`` method would invent call
#: edges out of thin air.
_AMBIGUOUS_METHOD_NAMES = frozenset({
    "get", "set", "add", "pop", "update", "items", "keys", "values",
    "append", "extend", "insert", "remove", "clear", "copy", "sort",
    "join", "split", "strip", "read", "write", "open", "close", "run",
    "start", "stop", "wait", "send", "put", "next", "format", "encode",
    "decode", "count", "index",
})


@dataclass
class SourceFile:
    """One parsed source file plus the bookkeeping rules need."""

    path: Path
    module: str
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, module: str) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(path=path, module=module, text=text, tree=tree,
                   lines=text.splitlines())


@dataclass
class FunctionInfo:
    """A function or method, addressable by dotted qualname."""

    qualname: str                 # e.g. repro.core.engine.KNNEngine.recover
    module: str
    name: str
    class_name: Optional[str]
    node: ast.AST                 # FunctionDef | AsyncFunctionDef
    source: SourceFile


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


def module_name_for(path: Path, src_root: Path) -> str:
    """``src_root/repro/core/engine.py`` → ``repro.core.engine``."""
    relative = path.relative_to(src_root).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def discover_sources(src_root: Path,
                     package: str = "") -> List[SourceFile]:
    """Parse every ``.py`` file under ``src_root`` into a SourceFile list."""
    src_root = Path(src_root)
    sources = []
    for path in sorted(src_root.rglob("*.py")):
        module = module_name_for(path, src_root)
        if package and not (module == package
                            or module.startswith(package + ".")):
            continue
        sources.append(SourceFile.parse(path, module))
    return sources


def dotted_chain(node: ast.AST) -> Optional[str]:
    """``np.random.default_rng`` as a dotted string, or None if not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CodeIndex:
    """Cross-module view of every function, class and import alias."""

    def __init__(self) -> None:
        self.sources: List[SourceFile] = []
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: simple name → every function/method bearing it
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        #: module → alias → dotted target ("np" → "numpy",
        #: "KNNEngine" → "repro.core.engine.KNNEngine")
        self.imports: Dict[str, Dict[str, str]] = {}
        #: module → names bound at module level (for global-write detection)
        self.module_globals: Dict[str, set] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, sources: Iterable[SourceFile]) -> "CodeIndex":
        index = cls()
        for source in sources:
            index._add_source(source)
        return index

    def _add_source(self, source: SourceFile) -> None:
        self.sources.append(source)
        module = source.module
        imports = self.imports.setdefault(module, {})
        bound = self.module_globals.setdefault(module, set())
        for node in source.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._record_import(node, imports, bound)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._record_function(source, node, class_name=None)
                bound.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self._record_class(source, node)
                bound.add(node.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                for target in _assign_targets(node):
                    bound.add(target)

    @staticmethod
    def _record_import(node: ast.AST, imports: Dict[str, str],
                       bound: set) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[name] = target
                bound.add(name)
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                return  # relative imports do not occur in this tree
            for alias in node.names:
                name = alias.asname or alias.name
                imports[name] = f"{node.module}.{alias.name}"
                bound.add(name)

    def _record_function(self, source: SourceFile, node: ast.AST,
                         class_name: Optional[str]) -> FunctionInfo:
        if class_name:
            qualname = f"{source.module}.{class_name}.{node.name}"
        else:
            qualname = f"{source.module}.{node.name}"
        info = FunctionInfo(qualname=qualname, module=source.module,
                            name=node.name, class_name=class_name,
                            node=node, source=source)
        self.functions[qualname] = info
        self.by_name.setdefault(node.name, []).append(info)
        return info

    def _record_class(self, source: SourceFile, node: ast.ClassDef) -> None:
        qualname = f"{source.module}.{node.name}"
        info = ClassInfo(qualname=qualname, module=source.module,
                         name=node.name, node=node)
        self.classes[qualname] = info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = self._record_function(
                    source, item, class_name=node.name)

    # -- lookup --------------------------------------------------------------

    def find(self, qualname: str) -> Optional[FunctionInfo]:
        """Resolve an exact qualname, or a unique ``suffix`` match."""
        hit = self.functions.get(qualname)
        if hit is not None:
            return hit
        suffix_hits = [info for name, info in self.functions.items()
                       if name.endswith("." + qualname)]
        return suffix_hits[0] if len(suffix_hits) == 1 else None

    def canonical_chain(self, module: str, chain: str) -> str:
        """Rewrite a dotted chain's leading alias through the import map.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` when the
        module did ``import numpy as np``.  Chains whose root is not an
        import alias come back unchanged.
        """
        head, sep, rest = chain.partition(".")
        target = self.imports.get(module, {}).get(head)
        if target is None:
            return chain
        return target + (("." + rest) if sep else "")

    # -- call resolution -----------------------------------------------------

    def resolve_call(self, call: ast.Call, caller: FunctionInfo,
                     unique_fallback: bool = False) -> Optional[FunctionInfo]:
        """Resolve a call expression to a function in the index, or None."""
        func = call.func
        module = caller.module
        if isinstance(func, ast.Name):
            local = self.functions.get(f"{module}.{func.id}")
            if local is not None:
                return local
            target = self.imports.get(module, {}).get(func.id)
            if target is not None:
                hit = self.functions.get(target)
                if hit is not None:
                    return hit
                # ``from x import Cls`` then ``Cls(...)``: constructor
                klass = self.classes.get(target)
                if klass is not None:
                    return klass.methods.get("__init__")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and caller.class_name:
                klass = self.classes.get(f"{module}.{caller.class_name}")
                if klass is not None and attr in klass.methods:
                    return klass.methods[attr]
            elif receiver.id == "cls" and caller.class_name:
                klass = self.classes.get(f"{module}.{caller.class_name}")
                if klass is not None and attr in klass.methods:
                    return klass.methods[attr]
            else:
                target = self.imports.get(module, {}).get(receiver.id)
                if target is not None:
                    # imported module (``checkpoint.save_checkpoint``) or
                    # imported class (``KNNEngine.recover``)
                    hit = self.functions.get(f"{target}.{attr}")
                    if hit is not None:
                        return hit
                    klass = self.classes.get(target)
                    if klass is not None:
                        return klass.methods.get(attr)
                local_class = self.classes.get(f"{module}.{receiver.id}")
                if local_class is not None:
                    return local_class.methods.get(attr)
        if unique_fallback and attr not in _AMBIGUOUS_METHOD_NAMES:
            candidates = self.by_name.get(attr, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def calls_of(self, info: FunctionInfo,
                 unique_fallback: bool = False
                 ) -> List[Tuple[ast.Call, Optional[FunctionInfo]]]:
        """Every call in ``info``'s body with its resolution (or None)."""
        out = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                out.append((node,
                            self.resolve_call(node, info,
                                              unique_fallback=unique_fallback)))
        return out


def _assign_targets(node: ast.AST) -> Sequence[str]:
    targets: List[str] = []
    if isinstance(node, ast.Assign):
        candidates = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        candidates = [node.target]
    else:
        candidates = []
    for target in candidates:
        if isinstance(target, ast.Name):
            targets.append(target.id)
        elif isinstance(target, ast.Tuple):
            targets.extend(elt.id for elt in target.elts
                           if isinstance(elt, ast.Name))
    return targets


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an attribute/subscript chain (``a.b[c].d`` → a)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def literal_tuple_entries(source: SourceFile,
                          constant_name: str) -> Dict[str, int]:
    """``NAME = ("a", "b", ...)`` at module level → ``{"a": line, ...}``.

    Used to read the crash-point and pure-function registries from source
    without importing the package under analysis.  Raises ``KeyError`` when
    the constant is missing, ``ValueError`` when it is not a tuple/list of
    string literals — both mean the manifest contract itself regressed.
    """
    for node in source.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if constant_name not in names:
            continue
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            raise ValueError(
                f"{constant_name} in {source.path} must be a literal tuple")
        entries: Dict[str, int] = {}
        for elt in node.value.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                raise ValueError(
                    f"{constant_name} in {source.path} must contain only "
                    f"string literals (line {elt.lineno})")
            entries[elt.value] = elt.lineno
        return entries
    raise KeyError(f"{constant_name} not found in {source.path}")
