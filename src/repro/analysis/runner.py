"""Wiring: configuration, rule orchestration and the analysis report.

:func:`analyze` is the one entry point everything shares — the
``python -m repro.analysis`` CLI, the CI gate, the perf-suite preflight
and the test suite.  The default configuration reads its registries from
the tree being analyzed (``PURE_FUNCTIONS`` from the scheduler module,
``ITERATION_CRASH_POINTS``/``SERVICE_CRASH_POINTS`` from the fault
toolkit) via :func:`repro.analysis.sources.literal_tuple_entries`, so the
analyzer never imports the code under analysis and the registries cannot
drift from what the analyzer enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis import (crashpoints, deadcode, durability, locks,
                            memmaps, purity)
from repro.analysis.findings import Finding
from repro.analysis.sources import (CodeIndex, SourceFile, discover_sources,
                                    literal_tuple_entries)
from repro.analysis.suppress import (FileSuppressions, apply_suppressions,
                                     collect_suppressions)

#: Locks on the query/ingestion path: holding one of these across a
#: blocking call violates the snapshot-isolation latency contract.
DEFAULT_HOT_LOCKS = (
    "ServingRuntime._engine_lock",
    "ServingRuntime._view_lock",
    "ServingRuntime._stats_lock",
    "AdmissionController._lock",
    "SnapshotView._lock",
    "RefreshSupervisor._state_lock",
)

#: Modules whose on-disk artifacts recovery trusts; bare writes here must
#: go through an atomic-replace helper or a sanctioned writer.
DEFAULT_DURABLE_MODULES = (
    "repro.storage",
    "repro.storage.*",
    "repro.core.checkpoint",
    "repro.core.update_queue",
    "repro.core.engine",
    "repro.service",
    "repro.service.*",
)

#: Writers whose durability is provided by an enclosing protocol rather
#: than a per-call fsync.  Each entry is a qualname suffix; the reason it
#: is sanctioned lives in docs/static-analysis.md.
DEFAULT_SANCTIONED_WRITERS = (
    # epoch content files — sealed by checksums.json before the epoch
    # directory is atomically published, so per-file fsync is redundant
    "save_knn_graph",
    "save_checkpoint",
    "save_score_cache",
    "save_portable_checkpoint",
    # append-only CRC-framed logs — a torn tail is detected and dropped
    # on scan, which is the durability contract itself
    "ProfileUpdateQueue._wal",
    "OnDiskProfileStore._append_file",
    # partition files carry a magic header checked on every read and are
    # re-derivable from the edge list — build artifacts, not recovery state
    "PartitionStore.write_partition",
)


@dataclass
class AnalysisConfig:
    """Everything :func:`analyze` needs to know about a tree."""

    repo_root: Path
    src_root: Path
    test_root: Path
    package: str = "repro"
    pure_manifest_module: str = "repro.pigraph.scheduler"
    pure_manifest_name: str = "PURE_FUNCTIONS"
    fault_registry_module: str = "repro.testing.faults"
    fault_registry_names: Tuple[str, ...] = ("ITERATION_CRASH_POINTS",
                                             "SERVICE_CRASH_POINTS")
    hot_locks: Tuple[str, ...] = DEFAULT_HOT_LOCKS
    durable_modules: Tuple[str, ...] = DEFAULT_DURABLE_MODULES
    sanctioned_writers: Tuple[str, ...] = DEFAULT_SANCTIONED_WRITERS
    memmap_allowed_modules: Tuple[str, ...] = ("repro.storage",
                                               "repro.storage.*")
    dead_imports: bool = False

    @classmethod
    def for_repo(cls, repo_root: Optional[Path] = None,
                 **overrides) -> "AnalysisConfig":
        root = Path(repo_root) if repo_root is not None else _default_root()
        return cls(repo_root=root, src_root=root / "src",
                   test_root=root / "tests", **overrides)


def _default_root() -> Path:
    root = Path(__file__).resolve().parents[3]
    if not (root / "src" / "repro").is_dir():
        raise RuntimeError(
            f"cannot locate the repo root from {__file__}; pass repo_root "
            "(or --root on the command line) explicitly")
    return root


@dataclass
class AnalysisReport:
    """The outcome of one analysis run."""

    config: AnalysisConfig
    findings: List[Finding]           # unsuppressed, sorted
    suppressed_count: int
    file_count: int
    rule_count: int = 5
    dead_import_findings: List[Finding] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        if self.is_clean:
            return (f"invariant lint: clean ({self.rule_count} rules, "
                    f"{self.file_count} files, 0 unsuppressed findings, "
                    f"{self.suppressed_count} suppressed)")
        return (f"invariant lint: {len(self.findings)} unsuppressed "
                f"finding(s) across {self.file_count} files "
                f"({self.suppressed_count} suppressed)")

    def render(self) -> str:
        lines = [finding.render(self.config.repo_root)
                 for finding in self.findings]
        lines.extend(finding.render(self.config.repo_root)
                     for finding in self.dead_import_findings)
        lines.append(self.summary())
        return "\n".join(lines)


def _registry_source(index: CodeIndex, module: str) -> SourceFile:
    for source in index.sources:
        if source.module == module:
            return source
    raise KeyError(f"module {module} not found in the analyzed tree")


def _discover_tests(test_root: Path) -> List[SourceFile]:
    sources = []
    if test_root.is_dir():
        for path in sorted(test_root.rglob("*.py")):
            module = "tests." + ".".join(
                path.relative_to(test_root).with_suffix("").parts)
            sources.append(SourceFile.parse(path, module))
    return sources


def run_rules(index: CodeIndex, config: AnalysisConfig,
              test_sources: List[SourceFile]) -> List[Finding]:
    """All five rules over a pre-built index — raw, pre-suppression."""
    findings: List[Finding] = []

    manifest = _registry_source(index, config.pure_manifest_module)
    pure_entries = literal_tuple_entries(manifest, config.pure_manifest_name)
    findings.extend(purity.check(index, {
        name: (manifest.path, line) for name, line in pure_entries.items()}))

    findings.extend(locks.check(index, hot_locks=config.hot_locks))

    registry_source = _registry_source(index, config.fault_registry_module)
    registry: Dict[str, Tuple[Path, int]] = {}
    for constant in config.fault_registry_names:
        for point, line in literal_tuple_entries(registry_source,
                                                 constant).items():
            registry[point] = (registry_source.path, line)
    findings.extend(crashpoints.check(index, registry, test_sources))

    findings.extend(durability.check(
        index, durable_modules=config.durable_modules,
        sanctioned_writers=config.sanctioned_writers))

    findings.extend(memmaps.check(
        index, allowed_modules=config.memmap_allowed_modules))
    return findings


def analyze(repo_root: Optional[Path] = None,
            config: Optional[AnalysisConfig] = None) -> AnalysisReport:
    """Run the full invariant lint over a repo tree."""
    if config is None:
        config = AnalysisConfig.for_repo(repo_root)
    sources = discover_sources(config.src_root, package=config.package)
    index = CodeIndex.build(sources)
    test_sources = _discover_tests(config.test_root)

    raw = run_rules(index, config, test_sources)

    suppressions: Dict[Path, FileSuppressions] = {}
    for source in index.sources:
        entry = collect_suppressions(source.path, source.text)
        suppressions[source.path] = entry
        raw.extend(entry.findings)    # malformed/reasonless suppressions

    kept, suppressed = apply_suppressions(raw, suppressions)
    kept.sort(key=lambda finding: finding.sort_key())

    dead = deadcode.check(index) if config.dead_imports else []
    dead.sort(key=lambda finding: finding.sort_key())

    return AnalysisReport(config=config, findings=kept,
                          suppressed_count=suppressed,
                          file_count=len(index.sources),
                          dead_import_findings=dead)
