"""The findings model shared by every invariant-lint rule."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple


class Severity(enum.Enum):
    """How a finding is treated by ``--strict``.

    Both levels fail a strict run — the split exists so reports can rank
    definite contract violations (``ERROR``) above heuristic ones
    (``WARNING``, e.g. a blocking call resolved through a unique-name
    fallback rather than a direct reference).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to an exact source location.

    ``rule_id`` is the identifier the inline suppression protocol matches
    (``# repro: allow[rule-id] reason``), so it must stay stable across
    releases of a rule's internals.
    """

    rule_id: str
    path: Path
    line: int
    severity: Severity
    message: str

    def sort_key(self) -> Tuple[str, int, str]:
        return (str(self.path), self.line, self.rule_id)

    def render(self, root: Path = None) -> str:
        path = self.path
        if root is not None:
            try:
                path = path.relative_to(root)
            except ValueError:
                pass
        return (f"{path}:{self.line}: [{self.rule_id}] "
                f"{self.severity.value}: {self.message}")
