"""Dead-import detection: the mechanical edge of the AST pass.

Not one of the five strict invariants — an unused import cannot corrupt a
store — but the same source index makes it nearly free, and the PR-10
dead-code sweep used it to clear the tree.  Exposed behind
``python -m repro.analysis --dead-imports`` as an advisory report
(``WARNING`` findings) so future sweeps stay one command.

``__init__.py`` files are skipped entirely: their imports *are* their API
(re-exports).  A name is counted as used when it appears as any ``Name``
load, as the root of an attribute chain, or in the module's ``__all__``.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.sources import CodeIndex

RULE_ID = "dead-import"


def _imported_bindings(tree: ast.Module) -> List[tuple]:
    bindings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                bindings.append((name, node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                bindings.append((name, node.lineno,
                                 f"{node.module}.{alias.name}" if node.module
                                 else alias.name))
    return bindings


def _used_names(tree: ast.Module) -> Set[str]:
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            pass  # docstring mentions are not uses
    # __all__ entries are uses (re-export modules keep their imports)
    for node in tree.body:
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets)
                and isinstance(node.value, (ast.List, ast.Tuple))):
            used.update(elt.value for elt in node.value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str))
    return used


def check(index: CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    for source in index.sources:
        if source.path.name == "__init__.py":
            continue
        used = _used_names(source.tree)
        for name, line, target in _imported_bindings(source.tree):
            if name not in used:
                findings.append(Finding(
                    rule_id=RULE_ID, path=source.path, line=line,
                    severity=Severity.WARNING,
                    message=f"'{name}' (from {target}) is imported but "
                            "never used"))
    return findings
