"""CLI for the invariant lint: ``python -m repro.analysis --strict``.

Exit status 0 means every rule passed (or each violation carries an inline
``# repro: allow[rule-id] reason``); with ``--strict``, unsuppressed
findings exit 1.  ``--dead-imports`` adds the advisory unused-import
report (never affects the exit status — it is a sweep aid, not a gate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.runner import AnalysisConfig, analyze


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant lint for the repro tree")
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: auto-detected from the "
                             "package location)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when unsuppressed findings remain")
    parser.add_argument("--dead-imports", action="store_true",
                        help="also report unused imports (advisory only)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON instead of text")
    args = parser.parse_args(argv)

    config = AnalysisConfig.for_repo(args.root, dead_imports=args.dead_imports)
    report = analyze(config=config)

    if args.json:
        payload = {
            "summary": report.summary(),
            "clean": report.is_clean,
            "suppressed": report.suppressed_count,
            "files": report.file_count,
            "findings": [
                {"rule": finding.rule_id,
                 "path": str(finding.path),
                 "line": finding.line,
                 "severity": finding.severity.value,
                 "message": finding.message}
                for finding in report.findings],
            "dead_imports": [
                {"path": str(finding.path), "line": finding.line,
                 "message": finding.message}
                for finding in report.dead_import_findings],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())

    if args.strict and not report.is_clean:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
