"""The inline suppression protocol: ``# repro: allow[rule-id] reason``.

A finding is a conversation between the analyzer and the author; the
suppression comment is the author's documented side of it.  The protocol
is deliberately strict:

* the comment names the exact rule id it silences (``allow[purity]``,
  ``allow[lock-discipline, durability]`` for several);
* a **non-empty reason is mandatory** — a reasonless suppression is itself
  an ``ERROR`` finding (rule id ``suppression``), because "trust me" is
  exactly the convention rot this package exists to stop;
* the comment suppresses findings on its own line, or — when it stands
  alone on a line — on the next non-blank, non-comment line.

There is intentionally no file-level or baseline suppression: every
accepted violation is visible at the line that violates, with its reason.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding, Severity

SUPPRESSION_RULE_ID = "suppression"

_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[a-z0-9\-]+(?:\s*,\s*[a-z0-9\-]+)*)\]"
    r"\s*(?P<reason>.*)$")
_MALFORMED = re.compile(r"#\s*repro:\s*allow\b")


@dataclass
class FileSuppressions:
    """Suppressions of one file: effective line → allowed rule ids."""

    path: Path
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    used: Set[Tuple[int, str]] = field(default_factory=set)

    def allows(self, line: int, rule_id: str) -> bool:
        if rule_id in self.by_line.get(line, ()):
            self.used.add((line, rule_id))
            return True
        return False


def _effective_line(lines: List[str], comment_index: int) -> int:
    """Line (1-based) a standalone suppression comment applies to."""
    stripped = lines[comment_index].strip()
    if not stripped.startswith("#"):
        return comment_index + 1  # trailing comment: its own line
    for offset in range(comment_index + 1, len(lines)):
        candidate = lines[offset].strip()
        if candidate and not candidate.startswith("#"):
            return offset + 1
    return comment_index + 1


def collect_suppressions(path: Path, text: str) -> FileSuppressions:
    result = FileSuppressions(path=path)
    lines = text.splitlines()
    for i, line in enumerate(lines):
        match = _PATTERN.search(line)
        if match is None:
            if _MALFORMED.search(line):
                result.findings.append(Finding(
                    rule_id=SUPPRESSION_RULE_ID, path=path, line=i + 1,
                    severity=Severity.ERROR,
                    message=("malformed suppression — the protocol is "
                             "'# repro: allow[rule-id] reason'")))
            continue
        reason = match.group("reason").strip()
        if not reason:
            result.findings.append(Finding(
                rule_id=SUPPRESSION_RULE_ID, path=path, line=i + 1,
                severity=Severity.ERROR,
                message=("suppression without a reason — write down why "
                         "this violation is correct, or fix it")))
            continue
        ids = {part.strip() for part in match.group("ids").split(",")}
        target = _effective_line(lines, i)
        result.by_line.setdefault(target, set()).update(ids)
    return result


def apply_suppressions(findings: List[Finding],
                       suppressions: Dict[Path, FileSuppressions]
                       ) -> Tuple[List[Finding], int]:
    """Split findings into (unsuppressed, suppressed-count)."""
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        entry = suppressions.get(finding.path)
        if entry is not None and entry.allows(finding.line, finding.rule_id):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
