"""Rule ``purity``: declared-pure entry points must stay pure.

``plan_dirty_schedule``, ``plan_shard_schedule``, ``simulate_schedule`` and
``topk_candidate_rows`` are re-executed on every backend, every resume and
every re-plan — the parity walls only hold because the same inputs always
produce the same plan.  The :data:`repro.pigraph.scheduler.PURE_FUNCTIONS`
manifest declares that contract; this rule enforces it with a call-graph
walk from each manifest entry, rejecting any reachable wall-clock read,
randomness source, environment read, file I/O or module-global write.

Resolution is strict (see :mod:`repro.analysis.sources`): an edge is only
followed when the callee is unambiguous, so a false edge can never damn a
genuinely pure function.  The cost is that impurity hidden behind an
unresolvable indirection (a callback argument, a method on an unknown
object) is not seen — the manifest's functions take plain data in, plain
data out, which is exactly what keeps them analyzable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.effects import IMPURE_CATEGORIES, function_effects
from repro.analysis.findings import Finding, Severity
from repro.analysis.sources import CodeIndex, FunctionInfo

RULE_ID = "purity"


def _reachable(index: CodeIndex, entry: FunctionInfo
               ) -> List[Tuple[FunctionInfo, Tuple[str, ...]]]:
    """Functions reachable from ``entry`` with one witness call chain each."""
    seen = {entry.qualname}
    order = [(entry, (entry.qualname,))]
    frontier = [(entry, (entry.qualname,))]
    while frontier:
        info, chain = frontier.pop()
        for _call, resolved in index.calls_of(info, unique_fallback=False):
            if resolved is None or resolved.qualname in seen:
                continue
            seen.add(resolved.qualname)
            extended = chain + (resolved.qualname,)
            order.append((resolved, extended))
            frontier.append((resolved, extended))
    return order


def check(index: CodeIndex,
          entry_points: Dict[str, Tuple[str, int]]) -> List[Finding]:
    """Run the purity rule.

    ``entry_points`` maps each declared-pure qualname (or unique qualname
    suffix) to the ``(manifest file, line)`` that registered it, so a
    manifest entry that matches nothing is itself a finding rather than a
    silent no-op.
    """
    findings: List[Finding] = []
    reported = set()
    for declared, (manifest_path, manifest_line) in entry_points.items():
        entry = index.find(declared)
        if entry is None:
            findings.append(Finding(
                rule_id=RULE_ID, path=manifest_path, line=manifest_line,
                severity=Severity.ERROR,
                message=(f"PURE_FUNCTIONS entry '{declared}' matches no "
                         "function in the analyzed tree — fix the manifest "
                         "or the rename that orphaned it")))
            continue
        for info, chain in _reachable(index, entry):
            for effect in function_effects(info, index, unique_fallback=False):
                if effect.category not in IMPURE_CATEGORIES:
                    continue
                key = (info.source.path, effect.line, declared)
                if key in reported:
                    continue
                reported.add(key)
                via = ("" if len(chain) == 1
                       else " via " + " -> ".join(c.rsplit(".", 2)[-1]
                                                  for c in chain[1:]))
                findings.append(Finding(
                    rule_id=RULE_ID, path=info.source.path,
                    line=effect.line, severity=Severity.ERROR,
                    message=(f"declared-pure '{declared.rsplit('.', 1)[-1]}' "
                             f"reaches {effect.description}{via}; pure "
                             "schedule planners must depend on their inputs "
                             "alone")))
    return findings
