"""Rule ``lock-discipline``: no lock-order cycles, no blocking under hot locks.

The serving layer (PR 8/9) is a small web of locks — ``_engine_lock``,
``_view_lock``, ``_stats_lock``, the admission and snapshot ``_lock``s —
with two conventions that nothing checked until now:

* two locks must always be taken in a consistent order (a holds→acquires
  cycle between threads is a potential deadlock);
* a *hot* lock (one on the query/ingestion path) must never be held across
  a call that can park the thread: ``fsync``, thread/process joins,
  subprocess waits, engine iteration.  A reader stalled behind such a hold
  violates the snapshot-isolation latency contract the serving bench
  proves.

The rule catalogues every ``self.X = threading.Lock()`` (and module-level
lock) in the tree, walks each function with a held-lock stack over its
``with`` blocks, and follows calls (strict resolution plus the unique-name
fallback — a missed edge here hides a real deadlock) to build the
holds→acquires graph.  Cycles and same-lock re-entry are errors; blocking
effects reachable under a hot lock are errors unless suppressed with a
written reason at the call site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.effects import function_effects
from repro.analysis.findings import Finding, Severity
from repro.analysis.sources import CodeIndex, FunctionInfo, dotted_chain

RULE_ID = "lock-discipline"

_LOCK_CONSTRUCTORS = ("threading.Lock", "threading.RLock",
                      "threading.Condition", "threading.Semaphore",
                      "threading.BoundedSemaphore")


@dataclass(frozen=True)
class LockId:
    """Identity of one lock: ``Class.attr`` within a module, or a module
    global.  ``short`` is what hot-lock configuration matches against."""

    module: str
    owner: Optional[str]          # class name, or None for module-level
    attr: str

    @property
    def short(self) -> str:
        return f"{self.owner}.{self.attr}" if self.owner else self.attr

    def __str__(self) -> str:
        return (f"{self.module}.{self.short}")


def _constructor_chain(node: ast.AST, index: CodeIndex,
                       module: str) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    chain = dotted_chain(node.func)
    if chain is None:
        return None
    return index.canonical_chain(module, chain)


def catalog_locks(index: CodeIndex) -> Dict[str, LockId]:
    """Every lock binding in the tree, keyed ``module.Class.attr``.

    Reentrant kinds (RLock) are catalogued too — they participate in
    ordering cycles even though same-lock re-entry is legal for them.
    """
    locks: Dict[str, LockId] = {}
    for source in index.sources:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            chain = _constructor_chain(node.value, index, source.module)
            if chain not in _LOCK_CONSTRUCTORS:
                continue
            target = node.targets[0]
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                owner = _enclosing_class(source.tree, node)
                if owner is not None:
                    lock = LockId(source.module, owner, target.attr)
                    locks[str(lock)] = lock
            elif isinstance(target, ast.Name):
                lock = LockId(source.module, None, target.id)
                locks[str(lock)] = lock
    return locks


def _enclosing_class(tree: ast.Module, needle: ast.AST) -> Optional[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for sub in ast.walk(node):
                if sub is needle:
                    return node.name
    return None


def _lock_of_with_item(item: ast.withitem, info: FunctionInfo,
                       locks: Dict[str, LockId]) -> Optional[LockId]:
    expr = item.context_expr
    if (isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name)
            and expr.value.id == "self" and info.class_name):
        key = f"{info.module}.{info.class_name}.{expr.attr}"
        return locks.get(key)
    if isinstance(expr, ast.Name):
        return locks.get(f"{info.module}.{expr.id}")
    return None


def _direct_acquisitions(info: FunctionInfo,
                         locks: Dict[str, LockId]) -> List[Tuple[LockId, int]]:
    out = []
    for node in ast.walk(info.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                lock = _lock_of_with_item(item, info, locks)
                if lock is not None:
                    out.append((lock, node.lineno))
    return out


def _closure(per_function: Dict[str, Set],
             call_graph: Dict[str, Set[str]]) -> Dict[str, Set]:
    """Fixpoint union of ``per_function`` values over the call graph."""
    closed = {name: set(values) for name, values in per_function.items()}
    changed = True
    while changed:
        changed = False
        for name, callees in call_graph.items():
            bucket = closed.setdefault(name, set())
            before = len(bucket)
            for callee in callees:
                bucket.update(closed.get(callee, ()))
            if len(bucket) != before:
                changed = True
    return closed


@dataclass
class _Edge:
    held: LockId
    acquired: LockId
    path: object
    line: int
    note: str


class _HeldWalker(ast.NodeVisitor):
    """Walk one function body tracking the stack of held catalogued locks."""

    def __init__(self, info: FunctionInfo, index: CodeIndex,
                 locks: Dict[str, LockId],
                 acquire_closure: Dict[str, Set[str]],
                 blocking_closure: Dict[str, Set[str]],
                 hot_locks: FrozenSet[str]):
        self.info = info
        self.index = index
        self.locks = locks
        self.acquire_closure = acquire_closure
        self.blocking_closure = blocking_closure
        self.hot_locks = hot_locks
        self.held: List[LockId] = []
        self.edges: List[_Edge] = []
        self.findings: List[Finding] = []
        self._direct_blocking = {
            effect.line: effect.description
            for effect in function_effects(info, index, unique_fallback=True)
            if effect.category == "blocking"
        }

    def _is_hot(self, lock: LockId) -> bool:
        return lock.short in self.hot_locks or str(lock) in self.hot_locks

    def visit_With(self, node: ast.With) -> None:
        acquired = [lock for item in node.items
                    for lock in [_lock_of_with_item(item, self.info,
                                                    self.locks)]
                    if lock is not None]
        for lock in acquired:
            for held in self.held:
                self.edges.append(_Edge(held, lock, self.info.source.path,
                                        node.lineno,
                                        f"in {self.info.qualname}"))
            if lock in self.held:
                self.findings.append(Finding(
                    rule_id=RULE_ID, path=self.info.source.path,
                    line=node.lineno, severity=Severity.ERROR,
                    message=(f"'{lock.short}' re-acquired while already "
                             f"held in {self.info.qualname} — "
                             "threading.Lock is not reentrant, this "
                             "deadlocks the thread against itself")))
        self.held.extend(acquired)
        self.generic_visit(node)
        del self.held[len(self.held) - len(acquired):]

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            resolved = self.index.resolve_call(node, self.info,
                                               unique_fallback=True)
            if resolved is not None:
                for lock_key in self.acquire_closure.get(
                        resolved.qualname, ()):
                    lock = self.locks[lock_key]
                    for held in self.held:
                        self.edges.append(_Edge(
                            held, lock, self.info.source.path, node.lineno,
                            f"{self.info.qualname} -> {resolved.qualname}"))
                    if lock in self.held:
                        self.findings.append(Finding(
                            rule_id=RULE_ID, path=self.info.source.path,
                            line=node.lineno, severity=Severity.ERROR,
                            message=(f"'{lock.short}' re-acquired via call "
                                     f"to {resolved.qualname} while already "
                                     f"held in {self.info.qualname} — "
                                     "self-deadlock")))
            hot_held = [lock for lock in self.held if self._is_hot(lock)]
            if hot_held:
                descriptions = []
                if node.lineno in self._direct_blocking:
                    descriptions.append(self._direct_blocking[node.lineno])
                if resolved is not None:
                    for reason in sorted(self.blocking_closure.get(
                            resolved.qualname, ())):
                        descriptions.append(
                            f"{reason} (via {resolved.qualname})")
                for description in descriptions[:1]:
                    self.findings.append(Finding(
                        rule_id=RULE_ID, path=self.info.source.path,
                        line=node.lineno, severity=Severity.ERROR,
                        message=(f"{description} while holding hot lock "
                                 f"'{hot_held[0].short}' — the serving "
                                 "path must never park a thread under "
                                 "this lock")))
        self.generic_visit(node)


def _find_cycles(edges: Iterable[_Edge]) -> List[Tuple[List[str], _Edge]]:
    """Elementary cycles of the holds→acquires graph (one witness each)."""
    graph: Dict[str, Dict[str, _Edge]] = {}
    for edge in edges:
        held, acquired = str(edge.held), str(edge.acquired)
        if held == acquired:
            continue  # re-entry findings are produced at the site instead
        graph.setdefault(held, {}).setdefault(acquired, edge)
    cycles: List[Tuple[List[str], _Edge]] = []
    seen_cycles: Set[FrozenSet[str]] = set()

    def dfs(start: str, node: str, trail: List[str]) -> None:
        for nxt, edge in graph.get(node, {}).items():
            if nxt == start and len(trail) > 1:
                key = frozenset(trail)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append((trail + [start], edge))
            elif nxt not in trail and nxt > start:
                dfs(start, nxt, trail + [nxt])

    for start in sorted(graph):
        dfs(start, start, [start])
    return cycles


def check(index: CodeIndex, hot_locks: Iterable[str] = ()) -> List[Finding]:
    """Run the lock-discipline rule.

    ``hot_locks`` are ``Class.attr`` shorthands (or full
    ``module.Class.attr`` ids) naming the locks on the serving path.
    """
    locks = catalog_locks(index)
    hot = frozenset(hot_locks)
    direct_acquires: Dict[str, Set[str]] = {}
    blocking: Dict[str, Set[str]] = {}
    call_graph: Dict[str, Set[str]] = {}
    for qualname, info in index.functions.items():
        direct_acquires[qualname] = {
            str(lock) for lock, _line in _direct_acquisitions(info, locks)}
        blocking[qualname] = {
            effect.description
            for effect in function_effects(info, index, unique_fallback=True)
            if effect.category == "blocking"}
        call_graph[qualname] = {
            resolved.qualname
            for _call, resolved in index.calls_of(info, unique_fallback=True)
            if resolved is not None}
    acquire_closure = _closure(direct_acquires, call_graph)
    blocking_closure = _closure(blocking, call_graph)

    findings: List[Finding] = []
    edges: List[_Edge] = []
    for info in index.functions.values():
        walker = _HeldWalker(info, index, locks, acquire_closure,
                             blocking_closure, hot)
        walker.visit(info.node)
        findings.extend(walker.findings)
        edges.extend(walker.edges)

    for cycle, witness in _find_cycles(edges):
        pretty = " -> ".join(node.rsplit(".", 2)[-2] + "."
                             + node.rsplit(".", 2)[-1] for node in cycle)
        findings.append(Finding(
            rule_id=RULE_ID, path=witness.path, line=witness.line,
            severity=Severity.ERROR,
            message=(f"lock acquisition-order cycle {pretty} "
                     f"(witness edge {witness.note}) — two threads taking "
                     "these locks in opposite orders deadlock")))
    return findings
