"""I/O accounting shared by the storage layer and the benchmarks.

The paper's preliminary evaluation reports *partition load/unload operation
counts* (Table 1); its future work adds bytes moved and disk throughput.
``IOStats`` tracks all of these plus the simulated device time charged by
the :class:`~repro.storage.disk_model.DiskModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class IOStats:
    """Mutable counters for one storage component (or one whole run)."""

    partition_loads: int = 0
    partition_unloads: int = 0
    read_ops: int = 0
    write_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    simulated_io_seconds: float = 0.0

    @property
    def load_unload_operations(self) -> int:
        """Total load + unload operations — the quantity Table 1 reports."""
        return self.partition_loads + self.partition_unloads

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def record_read(self, num_bytes: int, simulated_seconds: float = 0.0) -> None:
        self.read_ops += 1
        self.bytes_read += int(num_bytes)
        self.simulated_io_seconds += simulated_seconds

    def record_write(self, num_bytes: int, simulated_seconds: float = 0.0) -> None:
        self.write_ops += 1
        self.bytes_written += int(num_bytes)
        self.simulated_io_seconds += simulated_seconds

    def record_partition_load(self) -> None:
        self.partition_loads += 1

    def record_partition_unload(self) -> None:
        self.partition_unloads += 1

    def merge(self, other: "IOStats") -> None:
        """Accumulate ``other`` into this instance (in place)."""
        self.partition_loads += other.partition_loads
        self.partition_unloads += other.partition_unloads
        self.read_ops += other.read_ops
        self.write_ops += other.write_ops
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.simulated_io_seconds += other.simulated_io_seconds

    def reset(self) -> None:
        self.partition_loads = 0
        self.partition_unloads = 0
        self.read_ops = 0
        self.write_ops = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.simulated_io_seconds = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "partition_loads": self.partition_loads,
            "partition_unloads": self.partition_unloads,
            "load_unload_operations": self.load_unload_operations,
            "read_ops": self.read_ops,
            "write_ops": self.write_ops,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "simulated_io_seconds": self.simulated_io_seconds,
        }

    def format_table(self) -> str:
        lines = [f"{key:>24}: {value}" for key, value in self.as_dict().items()]
        return "\n".join(lines)
