"""On-disk storage of partitions (phase 1 output).

Each partition ``R_i`` is written as one compact binary file containing the
partition's vertex array and its in-/out-edge arrays, written with NumPy so
that loading a partition is a single sequential read followed by zero-copy
``frombuffer`` slicing.  The store charges every read/write against the
configured :class:`~repro.storage.disk_model.DiskModel` and records the
operation in an :class:`~repro.storage.io_stats.IOStats` instance.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.partition.model import Partition
from repro.storage.disk_model import DiskModel, get_disk_model
from repro.storage.io_stats import IOStats
from repro.utils.logging import get_logger

PathLike = Union[str, os.PathLike]

_MAGIC = b"RPPT0001"
_logger = get_logger("storage.partition_store")


class PartitionStore:
    """Reads and writes partition files under a base directory."""

    def __init__(self, base_dir: PathLike, disk_model: Union[str, DiskModel] = "ssd",
                 io_stats: Optional[IOStats] = None):
        self._base_dir = Path(base_dir)
        self._base_dir.mkdir(parents=True, exist_ok=True)
        self._disk = get_disk_model(disk_model)
        self.io_stats = io_stats if io_stats is not None else IOStats()
        #: Optional :class:`repro.testing.faults.FaultPlan` consulted around
        #: partition writes (engine-wired).  Partition files are derived
        #: state — phase 1 rewrites them every iteration — so an injected
        #: write failure here models a transient disk error during an
        #: iteration, not durable-state corruption.
        self.fault_plan = None

    # -- paths -------------------------------------------------------------

    @property
    def base_dir(self) -> Path:
        return self._base_dir

    @property
    def disk_model(self) -> DiskModel:
        return self._disk

    def partition_path(self, pid: int) -> Path:
        return self._base_dir / f"partition_{pid:05d}.bin"

    def stored_partition_ids(self) -> List[int]:
        """Partition ids currently present on disk, ascending."""
        ids = []
        for path in self._base_dir.glob("partition_*.bin"):
            stem = path.stem.split("_", 1)[1]
            ids.append(int(stem))
        return sorted(ids)

    # -- write / read -------------------------------------------------------

    def write_partition(self, partition: Partition) -> Path:
        """Serialise one partition to its file (sequential write)."""
        path = self.partition_path(partition.pid)
        vertices = partition.vertices.astype(np.int64)
        in_edges = partition.in_edges.astype(np.int64)
        out_edges = partition.out_edges.astype(np.int64)
        header = np.asarray([
            partition.pid,
            len(vertices),
            len(in_edges),
            len(out_edges),
            partition.num_unique_in_sources,
            partition.num_unique_out_destinations,
        ], dtype=np.int64)
        if self.fault_plan is not None:
            self.fault_plan.file_op("write", path)
        with path.open("wb") as handle:
            handle.write(_MAGIC)
            handle.write(header.tobytes())
            handle.write(vertices.tobytes())
            handle.write(in_edges.tobytes())
            handle.write(out_edges.tobytes())
        if self.fault_plan is not None:
            self.fault_plan.after_file_op("write", path)
        num_bytes = (len(_MAGIC) + header.nbytes + vertices.nbytes
                     + in_edges.nbytes + out_edges.nbytes)
        self.io_stats.record_write(num_bytes, self._disk.write_cost(num_bytes, sequential=True))
        return path

    def write_partitions(self, partitions: Sequence[Partition]) -> None:
        for partition in partitions:
            self.write_partition(partition)

    def replace_all(self, partitions: Sequence[Partition]) -> None:
        """Make ``partitions`` the store's exact contents, overwriting in place.

        Phase 1 calls this once per iteration: existing files are truncated
        and rewritten rather than unlinked first, and only stale ids (from a
        run with more partitions) are deleted — no per-iteration directory
        churn.
        """
        keep = set()
        for partition in partitions:
            self.write_partition(partition)
            keep.add(partition.pid)
        for pid in self.stored_partition_ids():
            if pid not in keep:
                self.delete_partition(pid)

    def read_partition(self, pid: int) -> Partition:
        """Load one partition from disk (sequential read of the whole file).

        The returned arrays are zero-copy read-only views over the file's
        byte buffer — one allocation for the whole partition instead of one
        per array.  Partitions are immutable once written, so every consumer
        treats them as read-only.
        """
        path = self.partition_path(pid)
        if not path.exists():
            raise FileNotFoundError(f"no stored partition with id {pid} under {self._base_dir}")
        raw = path.read_bytes()
        if raw[:len(_MAGIC)] != _MAGIC:
            raise ValueError(f"{path} is not a repro partition file (bad magic)")
        offset = len(_MAGIC)
        header = np.frombuffer(raw, dtype=np.int64, count=6, offset=offset)
        offset += 6 * 8
        stored_pid, n_vertices, n_in, n_out, n_in_src, n_out_dst = (int(x) for x in header)
        if stored_pid != pid:
            raise ValueError(f"{path} stores partition {stored_pid}, expected {pid}")
        vertices = np.frombuffer(raw, dtype=np.int64, count=n_vertices, offset=offset)
        offset += n_vertices * 8
        in_edges = np.frombuffer(raw, dtype=np.int64, count=n_in * 2, offset=offset)
        in_edges = in_edges.reshape(n_in, 2)
        offset += n_in * 16
        out_edges = np.frombuffer(raw, dtype=np.int64, count=n_out * 2, offset=offset)
        out_edges = out_edges.reshape(n_out, 2)
        self.io_stats.record_read(len(raw), self._disk.read_cost(len(raw), sequential=True))
        return Partition(
            pid=pid,
            vertices=vertices,
            in_edges=in_edges,
            out_edges=out_edges,
            num_unique_in_sources=n_in_src,
            num_unique_out_destinations=n_out_dst,
        )

    def partition_size_bytes(self, pid: int) -> int:
        """On-disk size of a stored partition (0 when absent)."""
        path = self.partition_path(pid)
        return path.stat().st_size if path.exists() else 0

    def delete_partition(self, pid: int) -> bool:
        """Remove a stored partition file; returns ``True`` if it existed."""
        path = self.partition_path(pid)
        if path.exists():
            path.unlink()
            return True
        return False

    def clear(self) -> None:
        """Remove all stored partition files."""
        for pid in self.stored_partition_ids():
            self.delete_partition(pid)
