"""Out-of-core storage layer: partition files, profile files, disk model, cache."""

from repro.storage.disk_model import DiskModel, DISK_PRESETS
from repro.storage.io_stats import IOStats
from repro.storage.memory_manager import MemoryBudget, PartitionCache
from repro.storage.partition_store import PartitionStore
from repro.storage.profile_store import OnDiskProfileStore

__all__ = [
    "DiskModel",
    "DISK_PRESETS",
    "IOStats",
    "MemoryBudget",
    "PartitionCache",
    "PartitionStore",
    "OnDiskProfileStore",
]
