"""Memory budget accounting and the two-slot partition cache.

The paper's phase 4 keeps *at most two partitions resident* at any time and
the experiments count partition load/unload operations under that policy.
:class:`PartitionCache` enforces the policy (the slot count is configurable
so the memory-budget extension experiment can vary it), performs LRU
eviction, and attributes every load/unload to the shared
:class:`~repro.storage.io_stats.IOStats`.

:class:`MemoryBudget` is the byte-level account the cache draws from: the
engine sizes partitions (edges plus profile rows) and refuses to exceed the
configured budget, which is how "a memory-constrained commodity PC" is made
explicit and reproducible in software.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.partition.model import Partition
from repro.storage.io_stats import IOStats
from repro.storage.partition_store import PartitionStore
from repro.utils.validation import check_positive, check_positive_int


class MemoryBudget:
    """A simple byte-denominated memory account."""

    def __init__(self, capacity_bytes: float):
        check_positive(capacity_bytes, "capacity_bytes")
        self._capacity = float(capacity_bytes)
        self._used = 0.0
        self._peak = 0.0

    @property
    def capacity_bytes(self) -> float:
        return self._capacity

    @property
    def used_bytes(self) -> float:
        return self._used

    @property
    def peak_bytes(self) -> float:
        return self._peak

    @property
    def available_bytes(self) -> float:
        return self._capacity - self._used

    def can_allocate(self, num_bytes: float) -> bool:
        return self._used + num_bytes <= self._capacity

    def allocate(self, num_bytes: float) -> None:
        """Reserve ``num_bytes``; raises ``MemoryError`` when over budget."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        if not self.can_allocate(num_bytes):
            raise MemoryError(
                f"allocation of {num_bytes:.0f} bytes exceeds the memory budget "
                f"({self._used:.0f}/{self._capacity:.0f} bytes in use)"
            )
        self._used += num_bytes
        self._peak = max(self._peak, self._used)

    def release(self, num_bytes: float) -> None:
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        self._used = max(0.0, self._used - num_bytes)

    def record_transient(self, num_bytes: float) -> None:
        """Account a short-lived allocation against the budget.

        Enforces the cap (raising ``MemoryError`` like :meth:`allocate`) and
        advances the peak water-mark, but does not leave the bytes in
        ``used``.  Shard-parallel execution charges each worker's per-step
        resident slices this way: the budget is a *per concurrent holder*
        cap — every step's slices must individually fit — not a cumulative
        account across a wave.
        """
        self.allocate(num_bytes)
        self.release(num_bytes)

    def reset(self) -> None:
        self._used = 0.0
        self._peak = 0.0


class PartitionCache:
    """LRU cache of resident partitions with a bounded number of slots.

    ``max_resident=2`` reproduces the paper's policy of holding at most two
    partitions in memory while a PI-graph edge is processed.
    """

    def __init__(self, store: PartitionStore, max_resident: int = 2,
                 memory_budget: Optional[MemoryBudget] = None,
                 profile_bytes_per_user: int = 0,
                 io_stats: Optional[IOStats] = None):
        check_positive_int(max_resident, "max_resident")
        self._store = store
        self._max_resident = max_resident
        self._budget = memory_budget
        self._profile_bytes_per_user = profile_bytes_per_user
        self.io_stats = io_stats if io_stats is not None else store.io_stats
        self._resident: "OrderedDict[int, Partition]" = OrderedDict()
        self._sizes: Dict[int, int] = {}

    # -- cache behaviour -----------------------------------------------------

    @property
    def max_resident(self) -> int:
        return self._max_resident

    @property
    def resident_ids(self) -> List[int]:
        """Partition ids currently resident, least-recently-used first."""
        return list(self._resident)

    def is_resident(self, pid: int) -> bool:
        return pid in self._resident

    def acquire(self, pid: int) -> Partition:
        """Return partition ``pid``, loading it (and evicting) if necessary."""
        if pid in self._resident:
            self._resident.move_to_end(pid)
            return self._resident[pid]
        while len(self._resident) >= self._max_resident:
            self._evict_one()
        partition = self._store.read_partition(pid)
        size = partition.estimated_bytes(self._profile_bytes_per_user)
        if self._budget is not None:
            self._budget.allocate(size)
        self._resident[pid] = partition
        self._sizes[pid] = size
        self.io_stats.record_partition_load()
        return partition

    def acquire_pair(self, pid_a: int, pid_b: int) -> Tuple[Partition, Partition]:
        """Make partitions ``pid_a`` and ``pid_b`` simultaneously resident.

        This is exactly the access pattern of one PI-graph edge.  When the
        two ids are equal a single partition is loaded.
        """
        if pid_a == pid_b:
            partition = self.acquire(pid_a)
            return partition, partition
        if self._max_resident < 2:
            raise RuntimeError("acquire_pair requires at least two cache slots")
        # Keep the other requested partition from being evicted by touching it first.
        if pid_a in self._resident:
            self._resident.move_to_end(pid_a)
        if pid_b in self._resident:
            self._resident.move_to_end(pid_b)
        first = self.acquire(pid_a)
        self._resident.move_to_end(pid_a)
        second = self.acquire(pid_b)
        return first, second

    def release(self, pid: int) -> None:
        """Explicitly unload a resident partition (no-op when absent)."""
        if pid in self._resident:
            self._unload(pid)

    def flush(self) -> None:
        """Unload every resident partition."""
        for pid in list(self._resident):
            self._unload(pid)

    def _evict_one(self) -> None:
        pid, _ = next(iter(self._resident.items()))
        self._unload(pid)

    def _unload(self, pid: int) -> None:
        self._resident.pop(pid)
        size = self._sizes.pop(pid, 0)
        if self._budget is not None:
            self._budget.release(size)
        self.io_stats.record_partition_unload()

    # -- statistics ------------------------------------------------------------

    @property
    def load_unload_operations(self) -> int:
        return self.io_stats.load_unload_operations
