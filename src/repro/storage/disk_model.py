"""A deterministic block-device model (HDD / SSD substitution).

The paper's future-work evaluation compares execution on HDD vs SSD.  Real
rotating disks are not available (or controllable) in this reproduction
environment, so all partition I/O is charged against a simple analytical
device model: every operation pays a per-operation access latency (seek +
rotational delay for HDDs, controller latency for SSDs) plus a transfer
time proportional to the number of bytes moved.  Random accesses pay the
access latency on every call; sequential accesses amortise it.

The model produces *simulated seconds*; benchmarks report those alongside
operation counts, which keeps the experiment deterministic while preserving
the qualitative HDD ≪ SSD ordering the paper expects to observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class DiskModel:
    """Analytical latency/bandwidth model for one storage device."""

    name: str
    access_latency_s: float          # cost of initiating a random access
    sequential_bandwidth_bps: float  # bytes per second for sequential transfers
    random_bandwidth_bps: float      # bytes per second for random transfers
    write_penalty: float = 1.0       # multiplier applied to write transfers

    def __post_init__(self):
        check_non_negative(self.access_latency_s, "access_latency_s")
        if self.sequential_bandwidth_bps <= 0 or self.random_bandwidth_bps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.write_penalty <= 0:
            raise ValueError("write_penalty must be positive")

    def read_cost(self, num_bytes: int, sequential: bool = True) -> float:
        """Simulated seconds to read ``num_bytes``."""
        check_non_negative(num_bytes, "num_bytes")
        bandwidth = self.sequential_bandwidth_bps if sequential else self.random_bandwidth_bps
        latency = 0.0 if sequential else self.access_latency_s
        return latency + num_bytes / bandwidth

    def write_cost(self, num_bytes: int, sequential: bool = True) -> float:
        """Simulated seconds to write ``num_bytes``."""
        check_non_negative(num_bytes, "num_bytes")
        bandwidth = self.sequential_bandwidth_bps if sequential else self.random_bandwidth_bps
        latency = 0.0 if sequential else self.access_latency_s
        return latency + (num_bytes * self.write_penalty) / bandwidth

    def seek_cost(self) -> float:
        """Simulated seconds for a pure positioning operation."""
        return self.access_latency_s

    def mapped_read_cost(self, num_bytes: int, sequential: bool = True) -> float:
        """Simulated seconds to fault ``num_bytes`` in through a memory map.

        Mapped reads are demand-paged: the device still moves every touched
        byte, but in whole pages, so the charge is the ordinary read cost of
        the byte count rounded up to the page size.  A zero-byte mapping
        faults nothing and costs nothing.
        """
        check_non_negative(num_bytes, "num_bytes")
        if num_bytes == 0:
            return 0.0
        pages = -(-int(num_bytes) // PAGE_SIZE_BYTES)
        return self.read_cost(pages * PAGE_SIZE_BYTES, sequential=sequential)

    def mapped_write_cost(self, num_bytes: int, sequential: bool = True) -> float:
        """Simulated seconds to write ``num_bytes`` through a memory map.

        The write-side mirror of :meth:`mapped_read_cost`: dirty pages are
        flushed whole, so the charge is the ordinary write cost of the byte
        count rounded up to the page size.  In-place row updates and journal
        appends — the phase-5 incremental paths — are charged through this,
        keeping their accounting page-granular like the mapped reads.
        """
        check_non_negative(num_bytes, "num_bytes")
        if num_bytes == 0:
            return 0.0
        pages = -(-int(num_bytes) // PAGE_SIZE_BYTES)
        return self.write_cost(pages * PAGE_SIZE_BYTES, sequential=sequential)


#: Page granularity used by :meth:`DiskModel.mapped_read_cost`.
PAGE_SIZE_BYTES = 4096


#: Presets roughly matching a 7200-rpm laptop HDD, a SATA SSD, and an ideal device.
DISK_PRESETS: Dict[str, DiskModel] = {
    "hdd": DiskModel(
        name="hdd",
        access_latency_s=8e-3,                 # ~8 ms seek + rotational delay
        sequential_bandwidth_bps=120e6,        # 120 MB/s sequential
        random_bandwidth_bps=1.5e6,            # ~1.5 MB/s effective random
        write_penalty=1.1,
    ),
    "ssd": DiskModel(
        name="ssd",
        access_latency_s=8e-5,                 # ~80 µs
        sequential_bandwidth_bps=500e6,        # 500 MB/s sequential
        random_bandwidth_bps=250e6,            # 250 MB/s random
        write_penalty=1.3,
    ),
    "instant": DiskModel(
        name="instant",
        access_latency_s=0.0,
        sequential_bandwidth_bps=float("inf"),
        random_bandwidth_bps=float("inf"),
        write_penalty=1.0,
    ),
}


def get_disk_model(name_or_model) -> DiskModel:
    """Normalise a preset name or a :class:`DiskModel` instance to a model."""
    if isinstance(name_or_model, DiskModel):
        return name_or_model
    try:
        return DISK_PRESETS[name_or_model]
    except KeyError:
        known = ", ".join(sorted(DISK_PRESETS))
        raise KeyError(
            f"unknown disk model {name_or_model!r}; known presets: {known}"
        ) from None
