"""On-disk user-profile storage.

Profiles are kept on disk between phases and only the rows needed for the
currently-loaded pair of partitions are brought into memory (phase 4 loads
"the profiles of at most two partitions").  Two encodings mirror the
in-memory stores:

* dense — a single ``float64`` matrix file accessed through ``numpy.memmap``
  so that loading a partition's rows is a strided read and profile updates
  (phase 5) are in-place row writes;
* sparse — an ``indptr``/``items`` pair of int64 arrays (CSR-style), loaded
  per user-range; updates rewrite the file (sizes change), which matches the
  paper's lazy batch-update semantics.

Every operation is charged to the configured disk model and recorded in
:class:`~repro.storage.io_stats.IOStats`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

import numpy as np

from repro.similarity import measures as _measures
from repro.similarity.profiles import DenseProfileStore, ProfileStoreBase, SparseProfileStore
from repro.similarity.workloads import ProfileChange
from repro.storage.disk_model import DiskModel, get_disk_model
from repro.storage.io_stats import IOStats

PathLike = Union[str, os.PathLike]


class ProfileSlice:
    """Profiles of a subset of users, loaded into memory for similarity scoring.

    Construction precomputes an id→row lookup array (``_row_of``) and packs
    the profiles into a batch-scorable form — a dense matrix or a CSR
    incidence matrix — so that :meth:`similarity_pairs` is pure NumPy with no
    per-pair Python on either profile kind.
    """

    def __init__(self, kind: str, profiles: Optional[Dict[int, object]], dim: int = 0,
                 *, user_ids: Optional[np.ndarray] = None,
                 matrix: Optional[np.ndarray] = None):
        if kind not in ("sparse", "dense"):
            raise ValueError(f"kind must be 'sparse' or 'dense', got {kind!r}")
        self.kind = kind
        self._dim = dim
        if profiles is not None:
            self._user_ids = np.asarray(sorted(profiles), dtype=np.int64)
        elif kind == "dense" and user_ids is not None and matrix is not None:
            # array fast path: rows of ``matrix`` correspond to the (sorted)
            # ``user_ids``, no per-user dict required
            self._user_ids = np.asarray(user_ids, dtype=np.int64)
        else:
            raise ValueError("provide a profiles dict, or user_ids+matrix for dense")
        users = self._user_ids
        if len(users):
            self._row_of = np.full(int(users[-1]) + 1, -1, dtype=np.int64)
            self._row_of[users] = np.arange(len(users), dtype=np.int64)
        else:
            self._row_of = np.empty(0, dtype=np.int64)
        if kind == "dense":
            if matrix is not None:
                self._matrix = matrix
            elif profiles:
                self._matrix = np.vstack([profiles[int(user)] for user in users])
            else:
                self._matrix = np.zeros((0, dim), dtype=np.float64)
            self._dim = self._matrix.shape[1] if self._matrix.size else dim
            self._csr = None
            self._norms = np.linalg.norm(self._matrix, axis=1)
        else:
            self._profiles: Dict[int, object] = profiles
            self._matrix = None
            self._csr = _measures.SetProfileCSR.from_sets(
                [profiles[int(user)] for user in users])

    def _rows_for(self, user_ids: np.ndarray) -> np.ndarray:
        """Map loaded user ids to row indices, raising ``KeyError`` on misses."""
        rows = np.full(len(user_ids), -1, dtype=np.int64)
        in_range = (user_ids >= 0) & (user_ids < len(self._row_of))
        rows[in_range] = self._row_of[user_ids[in_range]]
        if (rows < 0).any():
            missing = int(user_ids[rows < 0][0])
            raise KeyError(f"user {missing} is not loaded in this profile slice")
        return rows

    @property
    def users(self) -> Set[int]:
        return set(self._user_ids.tolist())

    def __len__(self) -> int:
        return len(self._user_ids)

    def __contains__(self, user: int) -> bool:
        return bool(0 <= user < len(self._row_of) and self._row_of[user] >= 0)

    def get(self, user: int):
        if self.kind == "sparse":
            try:
                return self._profiles[user]
            except KeyError:
                raise KeyError(f"user {user} is not loaded in this profile slice") from None
        row = self._rows_for(np.asarray([user], dtype=np.int64))[0]
        return self._matrix[row]

    def merge(self, other: "ProfileSlice") -> "ProfileSlice":
        """Union of two slices (used when both partitions' profiles are resident)."""
        if other.kind != self.kind:
            raise ValueError("cannot merge slices of different profile kinds")
        if self.kind == "sparse":
            combined = dict(self._profiles)
            combined.update(other._profiles)
            return ProfileSlice(self.kind, combined, dim=self._dim or other._dim)
        # dense: concatenate the row blocks, keeping the other slice's row for
        # any user present in both (dict.update semantics)
        users = np.concatenate([self._user_ids, other._user_ids])
        matrix = np.concatenate([self._matrix, other._matrix], axis=0)
        order = np.argsort(users, kind="stable")
        users, matrix = users[order], matrix[order]
        if len(users) > 1:
            last = np.empty(len(users), dtype=bool)
            last[-1] = True
            np.not_equal(users[:-1], users[1:], out=last[:-1])
            users, matrix = users[last], matrix[last]
        return ProfileSlice(self.kind, None, dim=self._dim or other._dim,
                            user_ids=users, matrix=matrix)

    def similarity_pairs(self, pairs: np.ndarray, measure: str) -> np.ndarray:
        """Vectorised similarity for an ``(n, 2)`` array of loaded user ids."""
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must be an (n, 2) array")
        if len(pairs) == 0:
            return np.zeros(0, dtype=np.float64)
        _measures.get_measure(measure)
        if self.kind == "dense":
            if measure in _measures.SET_MEASURES:
                raise ValueError(f"measure {measure!r} needs sparse profiles")
            left_rows = self._rows_for(pairs[:, 0])
            right_rows = self._rows_for(pairs[:, 1])
            if measure == "cosine":
                # row norms are precomputed once per slice
                return _measures.cosine_from_norms(
                    self._matrix[left_rows], self._matrix[right_rows],
                    self._norms[left_rows], self._norms[right_rows])
            return _measures.vector_measure_batch(
                measure, self._matrix[left_rows], self._matrix[right_rows])
        if measure not in _measures.SET_MEASURES:
            raise ValueError(f"measure {measure!r} needs dense profiles")
        left_rows = self._rows_for(pairs[:, 0])
        right_rows = self._rows_for(pairs[:, 1])
        return self._csr.measure_pairs(measure, left_rows, right_rows)


class OnDiskProfileStore:
    """Persistent profile storage with partial (per-partition) loading."""

    _META_NAME = "profiles_meta.json"
    _DENSE_NAME = "profiles_dense.bin"
    _SPARSE_INDPTR = "profiles_indptr.bin"
    _SPARSE_ITEMS = "profiles_items.bin"

    def __init__(self, base_dir: PathLike, disk_model: Union[str, DiskModel] = "ssd",
                 io_stats: Optional[IOStats] = None):
        self._base_dir = Path(base_dir)
        self._base_dir.mkdir(parents=True, exist_ok=True)
        self._disk = get_disk_model(disk_model)
        self.io_stats = io_stats if io_stats is not None else IOStats()
        self._meta: Optional[dict] = None
        meta_path = self._base_dir / self._META_NAME
        if meta_path.exists():
            self._meta = json.loads(meta_path.read_text())

    # -- creation ------------------------------------------------------------

    @classmethod
    def create(cls, base_dir: PathLike, store: ProfileStoreBase,
               disk_model: Union[str, DiskModel] = "ssd",
               io_stats: Optional[IOStats] = None) -> "OnDiskProfileStore":
        """Persist an in-memory profile store and return the on-disk handle."""
        on_disk = cls(base_dir, disk_model=disk_model, io_stats=io_stats)
        on_disk._write_full(store)
        return on_disk

    def _write_full(self, store: ProfileStoreBase) -> None:
        if isinstance(store, DenseProfileStore):
            matrix = store.matrix.astype(np.float64)
            path = self._base_dir / self._DENSE_NAME
            matrix.tofile(path)
            self._meta = {"kind": "dense", "num_users": store.num_users, "dim": store.dim}
            self.io_stats.record_write(matrix.nbytes,
                                       self._disk.write_cost(matrix.nbytes, sequential=True))
        elif isinstance(store, SparseProfileStore):
            indptr = np.zeros(store.num_users + 1, dtype=np.int64)
            items_list: List[np.ndarray] = []
            for user in range(store.num_users):
                items = np.asarray(sorted(store.get(user)), dtype=np.int64)
                items_list.append(items)
                indptr[user + 1] = indptr[user] + len(items)
            items = (np.concatenate(items_list) if items_list
                     else np.empty(0, dtype=np.int64))
            indptr.tofile(self._base_dir / self._SPARSE_INDPTR)
            items.tofile(self._base_dir / self._SPARSE_ITEMS)
            self._meta = {"kind": "sparse", "num_users": store.num_users}
            total = indptr.nbytes + items.nbytes
            self.io_stats.record_write(total, self._disk.write_cost(total, sequential=True))
        else:
            raise TypeError(f"unsupported profile store type: {type(store).__name__}")
        (self._base_dir / self._META_NAME).write_text(json.dumps(self._meta))

    # -- queries --------------------------------------------------------------

    @property
    def kind(self) -> str:
        self._require_meta()
        return self._meta["kind"]

    @property
    def num_users(self) -> int:
        self._require_meta()
        return int(self._meta["num_users"])

    @property
    def dim(self) -> int:
        self._require_meta()
        return int(self._meta.get("dim", 0))

    def _require_meta(self) -> None:
        if self._meta is None:
            raise RuntimeError(
                f"no profile store has been created under {self._base_dir}; "
                "call OnDiskProfileStore.create() first"
            )

    def estimated_bytes_per_user(self) -> int:
        """Average on-disk profile size per user (memory-budget sizing)."""
        self._require_meta()
        if self._meta["kind"] == "dense":
            return self.dim * 8
        indptr_path = self._base_dir / self._SPARSE_INDPTR
        if not indptr_path.exists() or self.num_users == 0:
            return 0
        indptr = np.fromfile(indptr_path, dtype=np.int64)
        total_items = int(indptr[-1]) if len(indptr) else 0
        return max(8, (total_items * 8) // max(1, self.num_users))

    def load_users(self, user_ids: Iterable[int]) -> ProfileSlice:
        """Load the profiles of ``user_ids`` into a :class:`ProfileSlice`.

        The read is charged as a random access per contiguous user range
        (dense) or per user-range slice (sparse), which is how the real
        system would touch the profile file for one partition.
        """
        self._require_meta()
        ids = sorted({int(u) for u in user_ids})
        for user in ids:
            if not 0 <= user < self.num_users:
                raise IndexError(f"user {user} out of range (store has {self.num_users})")
        if self._meta["kind"] == "dense":
            return self._load_dense(ids)
        return self._load_sparse(ids)

    def _load_dense(self, ids: List[int]) -> ProfileSlice:
        dim = self.dim
        path = self._base_dir / self._DENSE_NAME
        mm = np.memmap(path, dtype=np.float64, mode="r", shape=(self.num_users, dim))
        blocks: List[np.ndarray] = []
        for start, stop in _contiguous_ranges(ids):
            block = np.array(mm[start:stop])
            blocks.append(block)
            num_bytes = block.nbytes
            self.io_stats.record_read(num_bytes,
                                      self._disk.read_cost(num_bytes, sequential=False))
        del mm
        if not blocks:
            return ProfileSlice("dense", {}, dim=dim)
        matrix = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=0)
        return ProfileSlice("dense", None, dim=dim,
                            user_ids=np.asarray(ids, dtype=np.int64), matrix=matrix)

    def _load_sparse(self, ids: List[int]) -> ProfileSlice:
        indptr = np.fromfile(self._base_dir / self._SPARSE_INDPTR, dtype=np.int64)
        self.io_stats.record_read(indptr.nbytes,
                                  self._disk.read_cost(indptr.nbytes, sequential=True))
        items_path = self._base_dir / self._SPARSE_ITEMS
        mm = np.memmap(items_path, dtype=np.int64, mode="r") if items_path.stat().st_size else None
        profiles: Dict[int, Set[int]] = {}
        for start, stop in _contiguous_ranges(ids):
            lo, hi = int(indptr[start]), int(indptr[stop])
            block = np.array(mm[lo:hi]) if (mm is not None and hi > lo) else np.empty(0, np.int64)
            self.io_stats.record_read(block.nbytes,
                                      self._disk.read_cost(block.nbytes, sequential=False))
            for user in range(start, stop):
                ulo, uhi = int(indptr[user]) - lo, int(indptr[user + 1]) - lo
                profiles[user] = set(int(x) for x in block[ulo:uhi])
        if mm is not None:
            del mm
        return ProfileSlice("sparse", profiles)

    def load_all(self) -> ProfileStoreBase:
        """Load the entire store back into memory (tests and small runs)."""
        self._require_meta()
        if self._meta["kind"] == "dense":
            path = self._base_dir / self._DENSE_NAME
            matrix = np.fromfile(path, dtype=np.float64).reshape(self.num_users, self.dim)
            self.io_stats.record_read(matrix.nbytes,
                                      self._disk.read_cost(matrix.nbytes, sequential=True))
            return DenseProfileStore(matrix)
        indptr = np.fromfile(self._base_dir / self._SPARSE_INDPTR, dtype=np.int64)
        items = np.fromfile(self._base_dir / self._SPARSE_ITEMS, dtype=np.int64)
        total = indptr.nbytes + items.nbytes
        self.io_stats.record_read(total, self._disk.read_cost(total, sequential=True))
        profiles = [set(int(x) for x in items[indptr[u]:indptr[u + 1]])
                    for u in range(self.num_users)]
        return SparseProfileStore(profiles)

    # -- updates (phase 5) -----------------------------------------------------

    def apply_changes(self, changes: Sequence[ProfileChange]) -> int:
        """Apply a batch of queued profile changes (the paper's lazy update).

        Returns the number of users whose profile actually changed.  Dense
        changes are in-place row writes through a writable memmap; sparse
        changes rewrite the item file because profile sizes shift.
        """
        self._require_meta()
        if not changes:
            return 0
        if self._meta["kind"] == "dense":
            return self._apply_dense(changes)
        return self._apply_sparse(changes)

    def _apply_dense(self, changes: Sequence[ProfileChange]) -> int:
        dim = self.dim
        path = self._base_dir / self._DENSE_NAME
        mm = np.memmap(path, dtype=np.float64, mode="r+", shape=(self.num_users, dim))
        touched = set()
        for change in changes:
            if change.kind != "set":
                raise ValueError("dense profile stores only accept 'set' changes")
            vector = np.asarray(change.vector, dtype=np.float64)
            if vector.shape != (dim,):
                raise ValueError(f"change vector must have shape ({dim},), got {vector.shape}")
            mm[change.user] = vector
            touched.add(change.user)
            self.io_stats.record_write(vector.nbytes,
                                       self._disk.write_cost(vector.nbytes, sequential=False))
        mm.flush()
        del mm
        return len(touched)

    def _apply_sparse(self, changes: Sequence[ProfileChange]) -> int:
        store = self.load_all()
        touched = set()
        for change in changes:
            if change.kind == "add":
                store.add_item(change.user, change.item)
            elif change.kind == "remove":
                store.remove_item(change.user, change.item)
            else:
                raise ValueError("sparse profile stores only accept 'add'/'remove' changes")
            touched.add(change.user)
        self._write_full(store)
        return len(touched)


def _contiguous_ranges(sorted_ids: Sequence[int]):
    """Yield (start, stop) half-open ranges covering runs of consecutive ids."""
    if not sorted_ids:
        return
    start = prev = sorted_ids[0]
    for value in sorted_ids[1:]:
        if value == prev + 1:
            prev = value
            continue
        yield (start, prev + 1)
        start = prev = value
    yield (start, prev + 1)
