"""On-disk user-profile storage.

Profiles are kept on disk between phases and only the rows needed for the
currently-loaded pair of partitions are brought into memory (phase 4 loads
"the profiles of at most two partitions").  Two encodings mirror the
in-memory stores:

* dense — a ``float64`` matrix file plus a precomputed per-row norm file,
  both accessed through ``numpy.memmap``; a contiguous partition's slice is
  served *zero-copy* as a read-only view of the mapped files, and profile
  updates (phase 5) are in-place row writes;
* sparse — the store's CSR incidence arrays split into **row segments**
  (one ``indptr``/``codes`` file pair per segment, segment boundaries
  aligned with the paper's contiguous partition split when the engine
  creates the store) plus a small **row-remap journal**: phase-5 updates
  append the touched rows' new contents to the journal instead of
  rewriting the store, and the journal is folded back into the touched
  segments only when it outgrows a segment.  Update write-bytes therefore
  scale with the touched rows, not the store size.

The on-disk layout is versioned (``format_version`` in the meta file).
Version-1 stores (dense without the norm file, sparse with raw item ids)
and version-2 stores (sparse as one monolithic CSR file pair) are still
readable through fallback loaders.  Every layout rewrite or incremental
update bumps the store's ``generation`` counter, which worker processes
holding the store open by path use to invalidate their cached slices.
The store also keeps an in-memory log of which rows each applied batch
touched (:meth:`OnDiskProfileStore.touched_rows_since`), the delta feed of
the engine's incremental phase 4; full rewrites, journal compactions and
:meth:`OnDiskProfileStore.reload` truncate that history, answering ``None``
("assume everything changed").  Whole-file replacements go through a temp
file + rename, so hard links taken by a portable checkpoint
(:mod:`repro.core.checkpoint`) keep pointing at the immutable old bytes.

Every operation is charged to the configured disk model and recorded in
:class:`~repro.storage.io_stats.IOStats`.  Mapped reads are charged through
:meth:`~repro.storage.disk_model.DiskModel.mapped_read_cost` (page-granular
demand paging) at slice-load time, which is also exposed as
:meth:`OnDiskProfileStore.charge_slice_read` so a coordinating process can
account for reads its worker processes perform against the same files.
Incremental updates (dense row writes, journal appends) are charged through
the symmetric ``mapped_write_cost``.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.similarity import measures as _measures
from repro.similarity.profiles import DenseProfileStore, ProfileStoreBase, SparseProfileStore
from repro.similarity.workloads import ProfileChange
from repro.storage.disk_model import DiskModel, get_disk_model
from repro.storage.io_stats import IOStats
from repro.utils.arrays import ragged_ranges

PathLike = Union[str, os.PathLike]

#: Current on-disk layout version (see module docstring for the history).
FORMAT_VERSION = 3

#: Segment size used when the creator supplies no partition-aligned bounds.
DEFAULT_SEGMENT_ROWS = 4096

#: Entries retained in the in-memory touched-row delta log before the oldest
#: generations are forgotten (callers asking about forgotten generations get
#: ``None`` — "unknown, rescore everything").
_DELTA_LOG_LIMIT = 64


class StoreCorruptionError(RuntimeError):
    """A store file's content does not match its recorded CRC32."""


def _atomic_tofile(array: np.ndarray, path: Path, fault_plan=None) -> None:
    """Write ``array`` to ``path`` via a temp file + rename.

    Replacing the file atomically gives it a fresh inode, so hard links taken
    by a portable checkpoint keep pointing at the old (immutable) bytes
    instead of being rewritten underneath the checkpoint.

    ``fault_plan`` (see :mod:`repro.testing.faults`) can fail the write or
    the rename, or truncate the published file, to model disk faults.
    """
    tmp = path.with_name(path.name + ".tmp")
    if fault_plan is not None:
        fault_plan.file_op("write", path)
    with tmp.open("wb") as handle:
        array.tofile(handle)
        handle.flush()
        os.fsync(handle.fileno())
    if fault_plan is not None:
        fault_plan.file_op("rename", path)
    os.replace(tmp, path)
    if fault_plan is not None:
        fault_plan.after_file_op("write", path)


def _atomic_write_bytes(data: bytes, path: Path, fault_plan=None) -> None:
    """Byte-level sibling of :func:`_atomic_tofile` (same hard-link contract)."""
    tmp = path.with_name(path.name + ".tmp")
    if fault_plan is not None:
        fault_plan.file_op("write", path)
    with tmp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    if fault_plan is not None:
        fault_plan.file_op("rename", path)
    os.replace(tmp, path)
    if fault_plan is not None:
        fault_plan.after_file_op("write", path)


def partition_aligned_bounds(num_users: int, num_partitions: int) -> List[int]:
    """Sparse-segment boundaries matching the paper's contiguous n/m split.

    The contiguous partitioner assigns vertex ``v`` to partition ``v*m // n``,
    so partition ``i`` spans ``[ceil(i*n/m), ceil((i+1)*n/m))``.  Using these
    boundaries as the segment bounds makes every partition's profile slice a
    pure view of one mapped segment, and phase-5 segment rewrites line up
    with partitions.
    """
    bounds = sorted({(i * num_users + num_partitions - 1) // num_partitions
                     for i in range(num_partitions)} | {num_users})
    if not bounds or bounds[0] != 0:
        bounds = [0] + bounds
    return bounds


class ProfileSlice:
    """Profiles of a subset of users, loaded into memory for similarity scoring.

    Construction precomputes an id→row translation — a plain offset when the
    user ids are one contiguous run (the common case for the paper's
    contiguous partitioner), a lookup array otherwise — and packs the
    profiles into a batch-scorable form: a dense matrix (plus row norms) or
    a CSR incidence matrix, so that :meth:`similarity_pairs` is pure NumPy
    with no per-pair Python on either profile kind.  Slices served from a
    mapped store hold read-only views of the mapped file; nothing in the
    scoring path writes through them.

    Merging two dense slices with disjoint users produces a **multi-block**
    slice that addresses rows across the original mapped blocks — no
    concatenated matrix is ever allocated, so a merged two-partition
    residency set stays fully zero-copy.
    """

    def __init__(self, kind: str, profiles: Optional[Dict[int, object]], dim: int = 0,
                 *, user_ids: Optional[np.ndarray] = None,
                 matrix: Optional[np.ndarray] = None,
                 norms: Optional[np.ndarray] = None,
                 csr: Optional[_measures.SetProfileCSR] = None):
        if kind not in ("sparse", "dense"):
            raise ValueError(f"kind must be 'sparse' or 'dense', got {kind!r}")
        self.kind = kind
        self._dim = dim
        if profiles is not None:
            self._user_ids = np.asarray(sorted(profiles), dtype=np.int64)
        elif user_ids is not None and (matrix is not None or csr is not None):
            # array fast path: rows correspond to the (sorted) ``user_ids``,
            # no per-user dict required
            self._user_ids = np.asarray(user_ids, dtype=np.int64)
        else:
            raise ValueError("provide a profiles dict, or user_ids plus matrix/csr")
        self._index_ids()
        self._blocks: Optional[List[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = None
        self._row_block: Optional[np.ndarray] = None
        self._row_local: Optional[np.ndarray] = None
        if kind == "dense":
            if matrix is not None:
                self._matrix = matrix
            elif profiles:
                self._matrix = np.vstack([profiles[int(user)] for user in self._user_ids])
            else:
                self._matrix = np.zeros((0, dim), dtype=np.float64)
            self._dim = self._matrix.shape[1] if self._matrix.size else dim
            self._csr = None
            self._profiles = None
            self._norms = (np.asarray(norms, dtype=np.float64) if norms is not None
                           else np.linalg.norm(self._matrix, axis=1))
        else:
            self._matrix = None
            self._norms = None
            if csr is not None:
                self._profiles = None
                self._csr = csr
            else:
                self._profiles = profiles
                self._csr = _measures.SetProfileCSR.from_sets(
                    [profiles[int(user)] for user in self._user_ids])

    def _index_ids(self) -> None:
        """Precompute the id→row translation for the (sorted) ``_user_ids``."""
        users = self._user_ids
        if len(users) and int(users[-1]) - int(users[0]) + 1 == len(users):
            # contiguous run: id→row is an offset, no lookup allocation
            self._row_start: Optional[int] = int(users[0])
            self._row_of: Optional[np.ndarray] = None
        else:
            self._row_start = None
            if len(users):
                self._row_of = np.full(int(users[-1]) + 1, -1, dtype=np.int64)
                self._row_of[users] = np.arange(len(users), dtype=np.int64)
            else:
                self._row_of = np.empty(0, dtype=np.int64)

    @classmethod
    def _from_dense_blocks(cls, blocks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
                           user_ids: np.ndarray, row_block: np.ndarray,
                           row_local: np.ndarray, dim: int) -> "ProfileSlice":
        """A multi-block dense slice over existing row blocks (no matrix copy)."""
        piece = cls.__new__(cls)
        piece.kind = "dense"
        piece._dim = dim
        piece._user_ids = user_ids
        piece._index_ids()
        piece._profiles = None
        piece._csr = None
        piece._matrix = None
        piece._norms = None
        piece._blocks = blocks
        piece._row_block = row_block
        piece._row_local = row_local
        return piece

    def _dense_blocks(self) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """This slice's dense row blocks as ``(user_ids, matrix, norms)`` triples."""
        if self._blocks is not None:
            return self._blocks
        return [(self._user_ids, self._matrix, self._norms)]

    def _take_dense(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Gather ``(matrix_rows, norm_rows)`` across however many blocks back them."""
        if self._matrix is not None:
            return self._matrix[rows], self._norms[rows]
        out = np.empty((len(rows), self._dim), dtype=np.float64)
        norms = np.empty(len(rows), dtype=np.float64)
        block_of = self._row_block[rows]
        local = self._row_local[rows]
        for index, (_, block_matrix, block_norms) in enumerate(self._blocks):
            mask = block_of == index
            if mask.any():
                out[mask] = block_matrix[local[mask]]
                norms[mask] = block_norms[local[mask]]
        return out, norms

    def _rows_for(self, user_ids: np.ndarray) -> np.ndarray:
        """Map loaded user ids to row indices, raising ``KeyError`` on misses."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        if self._row_start is not None:
            rows = user_ids - self._row_start
            bad = (rows < 0) | (rows >= len(self._user_ids))
        else:
            rows = np.full(len(user_ids), -1, dtype=np.int64)
            in_range = (user_ids >= 0) & (user_ids < len(self._row_of))
            rows[in_range] = self._row_of[user_ids[in_range]]
            bad = rows < 0
        if bad.any():
            missing = int(user_ids[bad][0])
            raise KeyError(f"user {missing} is not loaded in this profile slice")
        return rows

    @property
    def users(self) -> Set[int]:
        return set(self._user_ids.tolist())

    @property
    def user_ids(self) -> np.ndarray:
        """The loaded user ids, sorted ascending (do not mutate)."""
        return self._user_ids

    @property
    def matrix(self) -> Optional[np.ndarray]:
        """The dense profile matrix (``None`` for sparse and multi-block slices)."""
        return self._matrix

    @property
    def matrix_blocks(self) -> Optional[Tuple[np.ndarray, ...]]:
        """The dense row blocks backing this slice (``None`` for sparse ones).

        A slice loaded from one partition has a single block; a merged
        two-partition slice keeps both partitions' mapped blocks as-is.
        """
        if self.kind != "dense":
            return None
        return tuple(matrix for _, matrix, _ in self._dense_blocks())

    def __len__(self) -> int:
        return len(self._user_ids)

    def __contains__(self, user: int) -> bool:
        if self._row_start is not None:
            return self._row_start <= user < self._row_start + len(self._user_ids)
        return bool(0 <= user < len(self._row_of) and self._row_of[user] >= 0)

    def get(self, user: int):
        if self.kind == "sparse":
            if self._profiles is not None:
                try:
                    return self._profiles[user]
                except KeyError:
                    raise KeyError(
                        f"user {user} is not loaded in this profile slice") from None
            row = int(self._rows_for(np.asarray([user], dtype=np.int64))[0])
            return set(self._csr.row_items(row).tolist())
        row = int(self._rows_for(np.asarray([user], dtype=np.int64))[0])
        if self._matrix is not None:
            return self._matrix[row]
        block = int(self._row_block[row])
        return self._blocks[block][1][int(self._row_local[row])]

    def _as_profiles_dict(self) -> Dict[int, object]:
        """Sparse slice as a ``user -> item set`` dict (merge fallback)."""
        if self._profiles is not None:
            return dict(self._profiles)
        return {int(user): self.get(int(user)) for user in self._user_ids}

    def merge(self, other: "ProfileSlice") -> "ProfileSlice":
        """Union of two slices (used when both partitions' profiles are resident).

        Dense slices with disjoint user sets — always the case for two
        partitions — merge into a multi-block slice referencing the original
        row blocks: no matrix is allocated or copied.  Overlapping dense
        slices fall back to a gathered copy with ``dict.update`` semantics
        (the other slice's row wins).
        """
        if other.kind != self.kind:
            raise ValueError("cannot merge slices of different profile kinds")
        if self.kind == "sparse":
            if self._mergeable_csr(other):
                return self._merge_sparse_arrays(other)
            combined = self._as_profiles_dict()
            combined.update(other._as_profiles_dict())
            return ProfileSlice(self.kind, combined, dim=self._dim or other._dim)
        blocks = self._dense_blocks() + other._dense_blocks()
        users = np.concatenate([ids for ids, _, _ in blocks])
        order = np.argsort(users, kind="stable")
        sorted_users = users[order]
        if len(sorted_users) <= 1 or not bool(
                (sorted_users[1:] == sorted_users[:-1]).any()):
            sizes = [len(ids) for ids, _, _ in blocks]
            row_block = np.repeat(np.arange(len(blocks), dtype=np.int64),
                                  sizes)[order]
            row_local = np.concatenate(
                [np.arange(size, dtype=np.int64) for size in sizes])[order]
            dim = self._dim or other._dim
            return ProfileSlice._from_dense_blocks(blocks, sorted_users,
                                                   row_block, row_local, dim)
        # overlapping users: gather both sides and keep the other slice's row
        # for any user present in both (dict.update semantics)
        self_matrix, self_norms = self._take_dense(
            np.arange(len(self._user_ids), dtype=np.int64))
        other_matrix, other_norms = other._take_dense(
            np.arange(len(other._user_ids), dtype=np.int64))
        users = np.concatenate([self._user_ids, other._user_ids])
        matrix = np.concatenate([self_matrix, other_matrix], axis=0)
        norms = np.concatenate([self_norms, other_norms])
        order = np.argsort(users, kind="stable")
        users, matrix, norms = users[order], matrix[order], norms[order]
        if len(users) > 1:
            last = np.empty(len(users), dtype=bool)
            last[-1] = True
            np.not_equal(users[:-1], users[1:], out=last[:-1])
            users, matrix, norms = users[last], matrix[last], norms[last]
        return ProfileSlice(self.kind, None, dim=self._dim or other._dim,
                            user_ids=users, matrix=matrix, norms=norms)

    def merge_indexed(self, other: "ProfileSlice", user_ids: np.ndarray,
                      order: np.ndarray) -> "ProfileSlice":
        """Union of two disjoint slices using a precomputed merge index.

        ``order`` is the stable argsort of the concatenated
        ``[self.user_ids, other.user_ids]`` and ``user_ids`` the resulting
        sorted ids — exactly what :meth:`merge` computes internally for the
        disjoint case.  Phase 4 builds the index **once** per residency
        step in the coordinating process and shares it (with worker
        processes: through shared memory), so no consumer re-runs the
        argsort.  Results are identical to :meth:`merge` for disjoint user
        sets; overlapping ids are rejected (the index encodes no
        ``dict.update`` winner).
        """
        if other.kind != self.kind:
            raise ValueError("cannot merge slices of different profile kinds")
        user_ids = np.asarray(user_ids, dtype=np.int64)
        order = np.asarray(order, dtype=np.int64)
        total = len(self._user_ids) + len(other._user_ids)
        if len(user_ids) != total or len(order) != total:
            raise ValueError(
                f"merge index covers {len(user_ids)} rows but the slices hold "
                f"{total}; the index must describe exactly these two slices")
        if total > 1 and bool((user_ids[1:] == user_ids[:-1]).any()):
            raise ValueError("merge_indexed requires disjoint user sets; "
                             "use merge() for overlapping slices")
        if self.kind == "sparse":
            if not self._mergeable_csr(other):
                # dict-based (v1) slices cannot gather by row index
                return self.merge(other)
            merged = _measures.SetProfileCSR.merged_subset(self._csr, other._csr,
                                                           order)
            return ProfileSlice("sparse", None, dim=self._dim or other._dim,
                                user_ids=user_ids, csr=merged)
        blocks = self._dense_blocks() + other._dense_blocks()
        starts = np.zeros(len(blocks) + 1, dtype=np.int64)
        np.cumsum([len(ids) for ids, _, _ in blocks], out=starts[1:])
        row_block = np.searchsorted(starts, order, side="right") - 1
        row_local = order - starts[row_block]
        return ProfileSlice._from_dense_blocks(blocks, user_ids, row_block,
                                               row_local,
                                               self._dim or other._dim)

    def _mergeable_csr(self, other: "ProfileSlice") -> bool:
        """True when both sparse slices hold CSRs under one item coding."""
        if self._profiles is not None or other._profiles is not None:
            return False
        a, b = self._csr.item_ids, other._csr.item_ids
        if self._csr.num_items != other._csr.num_items:
            return False
        if a is None or b is None:
            # raw-code CSRs: equal code spaces are only comparable when both
            # lack a decode table (codes are then the item ids themselves)
            return a is None and b is None
        # slices from one store share the store's single mapped item table,
        # so identity settles the common case without an O(num_items) scan
        return a is b or np.array_equal(a, b)

    def _merge_sparse_arrays(self, other: "ProfileSlice") -> "ProfileSlice":
        users = np.concatenate([self._user_ids, other._user_ids])
        rows = np.arange(len(users), dtype=np.int64)
        order = np.argsort(users, kind="stable")
        users, rows = users[order], rows[order]
        if len(users) > 1:
            # stable sort keeps other's row after self's for a shared user;
            # keeping the last occurrence reproduces dict.update semantics
            last = np.empty(len(users), dtype=bool)
            last[-1] = True
            np.not_equal(users[:-1], users[1:], out=last[:-1])
            users, rows = users[last], rows[last]
        merged = _measures.SetProfileCSR.merged_subset(self._csr, other._csr, rows)
        return ProfileSlice("sparse", None, dim=self._dim or other._dim,
                            user_ids=users, csr=merged)

    def similarity_pairs(self, pairs: np.ndarray, measure: str) -> np.ndarray:
        """Vectorised similarity for an ``(n, 2)`` array of loaded user ids."""
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must be an (n, 2) array")
        if len(pairs) == 0:
            return np.zeros(0, dtype=np.float64)
        _measures.get_measure(measure)
        if self.kind == "dense":
            if measure in _measures.SET_MEASURES:
                raise ValueError(f"measure {measure!r} needs sparse profiles")
            left, left_norms = self._take_dense(self._rows_for(pairs[:, 0]))
            right, right_norms = self._take_dense(self._rows_for(pairs[:, 1]))
            if measure == "cosine":
                # row norms are precomputed once per slice (or read straight
                # from the store's norm file)
                return _measures.cosine_from_norms(left, right,
                                                   left_norms, right_norms)
            return _measures.vector_measure_batch(measure, left, right)
        if measure not in _measures.SET_MEASURES:
            raise ValueError(f"measure {measure!r} needs dense profiles")
        left_rows = self._rows_for(pairs[:, 0])
        right_rows = self._rows_for(pairs[:, 1])
        return self._csr.measure_pairs(measure, left_rows, right_rows)


@dataclass
class _SparseV3State:
    """Lazily-opened mapped state of a segmented (v3) sparse store."""

    bounds: np.ndarray                 # segment boundaries, len num_segments+1
    seg_indptr: List[np.ndarray]       # per-segment local indptr maps
    seg_codes: List[np.ndarray]        # per-segment code maps
    item_ids: np.ndarray               # shared code→item-id table (append-only)
    j_rows: np.ndarray                 # journal row ids, append order
    j_indptr: np.ndarray               # journal indptr, len len(j_rows)+1
    j_codes: np.ndarray                # journal codes
    j_of: np.ndarray                   # row → latest journal entry (-1 = none)
    row_sizes: np.ndarray              # current size of every row (journal wins)


def _fill_rows(out_codes: np.ndarray, out_indptr: np.ndarray,
               out_rows: np.ndarray, src_indptr: np.ndarray,
               src_codes: np.ndarray, src_rows: np.ndarray) -> None:
    """Copy CSR rows ``src_rows`` into ``out_codes`` at positions ``out_rows``.

    One gather per source array — the same single-copy pattern as
    :meth:`SetProfileCSR.merged_subset` — so assembling a slice from several
    segments plus the journal never concatenates intermediate arrays.
    """
    src_rows = np.asarray(src_rows, dtype=np.int64)
    starts = np.asarray(src_indptr, dtype=np.int64)[src_rows]
    sizes = np.asarray(src_indptr, dtype=np.int64)[src_rows + 1] - starts
    source = ragged_ranges(starts, sizes)
    if not len(source):
        return
    dest = ragged_ranges(np.asarray(out_indptr, dtype=np.int64)[out_rows], sizes)
    out_codes[dest] = np.asarray(src_codes)[source]


class OnDiskProfileStore:
    """Persistent profile storage with partial (per-partition) loading."""

    _META_NAME = "profiles_meta.json"
    _DENSE_NAME = "profiles_dense.bin"
    _NORMS_NAME = "profiles_norms.bin"
    _SPARSE_INDPTR = "profiles_indptr.bin"
    _SPARSE_ITEMS = "profiles_items.bin"      # v1: raw item ids; v2: item codes
    _SPARSE_ITEM_IDS = "profiles_item_ids.bin"  # v2+: code→item-id table
    _SEG_PREFIX = "profiles_seg_"                          # v3 only
    _SEG_INDPTR_TMPL = _SEG_PREFIX + "{0:05d}_indptr.bin"
    _SEG_CODES_TMPL = _SEG_PREFIX + "{0:05d}_codes.bin"
    _JOURNAL_ROWS = "profiles_journal_rows.bin"            # v3 only
    _JOURNAL_INDPTR = "profiles_journal_indptr.bin"        # v3 only
    _JOURNAL_CODES = "profiles_journal_codes.bin"          # v3 only

    def __init__(self, base_dir: PathLike, disk_model: Union[str, DiskModel] = "ssd",
                 io_stats: Optional[IOStats] = None,
                 format_version: int = FORMAT_VERSION,
                 segment_bounds: Optional[Sequence[int]] = None,
                 journal_limit: Optional[int] = None,
                 verify: bool = False):
        # version 1 is read-only legacy (there has never been a v1 writer)
        if not 2 <= format_version <= FORMAT_VERSION:
            raise ValueError(f"format_version must be 2..{FORMAT_VERSION}, "
                             f"got {format_version}")
        self._base_dir = Path(base_dir)
        self._base_dir.mkdir(parents=True, exist_ok=True)
        self._disk = get_disk_model(disk_model)
        self.io_stats = io_stats if io_stats is not None else IOStats()
        self._target_version = int(format_version)
        self._segment_bounds_hint = (list(segment_bounds)
                                     if segment_bounds is not None else None)
        self._journal_limit_override = journal_limit
        #: Optional :class:`repro.testing.faults.FaultPlan` consulted around
        #: file writes and at the store's named crash points (engine-wired).
        self.fault_plan = None
        self._verify_on_open = bool(verify)
        self._meta: Optional[dict] = None
        # lazily-opened memory maps shared by every slice this store serves
        # (invalidated when a rewrite replaces the files)
        self._dense_mapped: Optional[Tuple[np.ndarray, Optional[np.ndarray]]] = None
        self._sparse_mapped: Optional[
            Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]] = None
        self._v3_state: Optional[_SparseV3State] = None
        self._item_code_cache: Optional[Dict[int, int]] = None
        meta_path = self._base_dir / self._META_NAME
        if meta_path.exists():
            self._meta = json.loads(meta_path.read_text())
        # touched-row delta log: (generation, sorted touched rows) per applied
        # batch, contiguous back to _delta_floor.  Opening a store by path
        # starts with empty history — whatever happened before is unknown.
        self._delta_log: List[Tuple[int, np.ndarray]] = []
        self._delta_floor: int = (int(self._meta.get("generation", 0))
                                  if self._meta else 0)
        if self._verify_on_open and self._meta is not None:
            self.verify_checksums(strict=True)

    # -- creation ------------------------------------------------------------

    @classmethod
    def create(cls, base_dir: PathLike, store: ProfileStoreBase,
               disk_model: Union[str, DiskModel] = "ssd",
               io_stats: Optional[IOStats] = None,
               format_version: int = FORMAT_VERSION,
               segment_bounds: Optional[Sequence[int]] = None,
               journal_limit: Optional[int] = None) -> "OnDiskProfileStore":
        """Persist an in-memory profile store and return the on-disk handle.

        ``format_version`` pins the written layout (v2 is kept writable for
        compatibility tests and fixtures; v1 is read-only legacy and is
        rejected here); ``segment_bounds``
        aligns the v3 sparse segments with the engine's partition split; and
        ``journal_limit`` caps the v3 row-remap journal before it is folded
        back into the segments (default: about one segment's rows).
        """
        on_disk = cls(base_dir, disk_model=disk_model, io_stats=io_stats,
                      format_version=format_version,
                      segment_bounds=segment_bounds, journal_limit=journal_limit)
        on_disk._write_full(store)
        return on_disk

    def _next_generation(self) -> int:
        return int(self._meta.get("generation", 0)) + 1 if self._meta else 0

    def _write_full(self, store: ProfileStoreBase) -> None:
        generation = self._next_generation()
        if isinstance(store, DenseProfileStore):
            matrix = store.matrix.astype(np.float64)
            _atomic_tofile(matrix, self._base_dir / self._DENSE_NAME, self.fault_plan)
            norms = np.linalg.norm(matrix, axis=1)
            _atomic_tofile(norms, self._base_dir / self._NORMS_NAME, self.fault_plan)
            self._meta = {"kind": "dense", "num_users": store.num_users,
                          "dim": store.dim,
                          "format_version": self._target_version,
                          "generation": generation}
            self._set_crc(self._DENSE_NAME, matrix)
            self._set_crc(self._NORMS_NAME, norms)
            total = matrix.nbytes + norms.nbytes
            self.io_stats.record_write(total,
                                       self._disk.write_cost(total, sequential=True))
        elif isinstance(store, SparseProfileStore):
            if self._target_version >= 3:
                self._write_sparse_v3(store, generation)
            else:
                self._write_sparse_v2(store, generation)
        else:
            raise TypeError(f"unsupported profile store type: {type(store).__name__}")
        self._write_meta()
        # the rewrite replaced the files; open maps point at dead data
        self._invalidate_maps()
        # every row may have changed; restart the delta history here
        self._reset_delta_log()

    def _write_sparse_v2(self, store: SparseProfileStore, generation: int) -> None:
        csr = store.incidence()
        indptr = np.asarray(csr.indptr, dtype=np.int64)
        codes = np.asarray(csr.codes, dtype=np.int64)
        item_ids = (np.asarray(csr.item_ids, dtype=np.int64)
                    if csr.item_ids is not None else np.empty(0, dtype=np.int64))
        _atomic_tofile(indptr, self._base_dir / self._SPARSE_INDPTR, self.fault_plan)
        _atomic_tofile(codes, self._base_dir / self._SPARSE_ITEMS, self.fault_plan)
        _atomic_tofile(item_ids, self._base_dir / self._SPARSE_ITEM_IDS,
                       self.fault_plan)
        self._meta = {"kind": "sparse", "num_users": store.num_users,
                      "num_items": csr.num_items, "format_version": 2,
                      "row_codes_sorted": bool(csr.rows_sorted),
                      "generation": generation}
        self._set_crc(self._SPARSE_INDPTR, indptr)
        self._set_crc(self._SPARSE_ITEMS, codes)
        self._set_crc(self._SPARSE_ITEM_IDS, item_ids)
        total = indptr.nbytes + codes.nbytes + item_ids.nbytes
        self.io_stats.record_write(total, self._disk.write_cost(total, sequential=True))

    def _write_sparse_v3(self, store: SparseProfileStore, generation: int) -> None:
        csr = store.incidence()  # from_sets sorts each row's codes
        indptr = np.asarray(csr.indptr, dtype=np.int64)
        codes = np.asarray(csr.codes, dtype=np.int64)
        item_ids = (np.asarray(csr.item_ids, dtype=np.int64)
                    if csr.item_ids is not None else np.empty(0, dtype=np.int64))
        bounds = self._resolve_segment_bounds(store.num_users)
        total = item_ids.nbytes
        crcs: Dict[str, int] = {}
        for index in range(len(bounds) - 1):
            lo, hi = bounds[index], bounds[index + 1]
            local = (indptr[lo:hi + 1] - indptr[lo]).astype(np.int64)
            seg_codes = codes[indptr[lo]:indptr[hi]]
            _atomic_tofile(local, self._base_dir / self._SEG_INDPTR_TMPL.format(index),
                           self.fault_plan)
            _atomic_tofile(seg_codes, self._base_dir / self._SEG_CODES_TMPL.format(index),
                           self.fault_plan)
            crcs[self._SEG_INDPTR_TMPL.format(index)] = zlib.crc32(local.tobytes())
            crcs[self._SEG_CODES_TMPL.format(index)] = zlib.crc32(seg_codes.tobytes())
            total += local.nbytes + seg_codes.nbytes
        _atomic_tofile(item_ids, self._base_dir / self._SPARSE_ITEM_IDS,
                       self.fault_plan)
        crcs[self._SPARSE_ITEM_IDS] = zlib.crc32(item_ids.tobytes())
        for name in (self._JOURNAL_ROWS, self._JOURNAL_INDPTR, self._JOURNAL_CODES):
            _atomic_write_bytes(b"", self._base_dir / name, self.fault_plan)
            crcs[name] = 0  # zlib.crc32(b"")
        # stale files from other layouts (upgrades) or shrunken segment counts
        for name in (self._SPARSE_INDPTR, self._SPARSE_ITEMS):
            path = self._base_dir / name
            if path.exists():
                path.unlink()
        for path in self._base_dir.glob("profiles_seg_*.bin"):
            index = int(path.stem.split("_")[2])
            if index >= len(bounds) - 1:
                path.unlink()
        self._meta = {"kind": "sparse", "num_users": store.num_users,
                      "num_items": csr.num_items, "format_version": 3,
                      "segment_bounds": [int(b) for b in bounds],
                      "journal_entries": 0, "generation": generation,
                      "crc32": crcs}
        self.io_stats.record_write(total, self._disk.write_cost(total, sequential=True))

    def _resolve_segment_bounds(self, num_users: int) -> List[int]:
        if self._segment_bounds_hint is not None:
            bounds = [int(b) for b in self._segment_bounds_hint]
            if (bounds[0] != 0 or bounds[-1] != num_users
                    or any(b >= c for b, c in zip(bounds, bounds[1:]))):
                raise ValueError(
                    "segment_bounds must be strictly increasing from 0 to num_users")
            return bounds
        if num_users == 0:
            return [0, 0]
        bounds = list(range(0, num_users, DEFAULT_SEGMENT_ROWS))
        bounds.append(num_users)
        return bounds

    def _invalidate_maps(self) -> None:
        self._dense_mapped = None
        self._sparse_mapped = None
        self._v3_state = None
        # full rewrites recode items; journal appends extend the cached map
        # in place instead (the item table is append-only between rewrites)
        self._item_code_cache = None

    def reload(self) -> None:
        """Re-read the meta file and drop every cached memory map.

        Worker processes holding this store open by path call this when the
        coordinator reports a newer :attr:`generation`: incremental updates
        replace journal/segment files, so cached maps (and any slices built
        on them) must be re-opened before the next load.
        """
        meta_path = self._base_dir / self._META_NAME
        self._meta = json.loads(meta_path.read_text()) if meta_path.exists() else None
        self._invalidate_maps()
        # the files may have been rewritten by another process; any delta
        # history collected through this handle no longer describes them
        self._reset_delta_log()
        if self._verify_on_open and self._meta is not None:
            self.verify_checksums(strict=True)

    # -- queries --------------------------------------------------------------

    @property
    def base_dir(self) -> Path:
        """Directory holding the store's files (worker processes re-open by path)."""
        return self._base_dir

    @staticmethod
    def linkable_snapshot_file(name: str) -> bool:
        """Whether a store file is safe to *hard-link* into a snapshot.

        Lives next to the write paths it describes: segment files and the
        monolithic v1/v2 CSR files are only ever replaced atomically via
        rename (:func:`_atomic_tofile`), so a link keeps the old bytes.
        The meta file is rewritten in place, the journal and item table
        are appended in place, and dense matrices/norms are updated
        through a writable memmap — those must be copied.  Any new store
        file defaults to copy until explicitly added here alongside an
        atomic-replace write path.
        """
        return (name.startswith(OnDiskProfileStore._SEG_PREFIX)
                or name in (OnDiskProfileStore._SPARSE_INDPTR,
                            OnDiskProfileStore._SPARSE_ITEMS))

    @property
    def kind(self) -> str:
        self._require_meta()
        return self._meta["kind"]

    @property
    def num_users(self) -> int:
        self._require_meta()
        return int(self._meta["num_users"])

    @property
    def dim(self) -> int:
        self._require_meta()
        return int(self._meta.get("dim", 0))

    @property
    def format_version(self) -> int:
        """On-disk layout version (1 = pre-norms/raw-item layout)."""
        self._require_meta()
        return int(self._meta.get("format_version", 1))

    @property
    def generation(self) -> int:
        """Monotone counter bumped by every update or rewrite of the files.

        Coordinators pass this to scoring workers, whose cached slices stay
        valid exactly as long as the generation they were loaded under.
        """
        self._require_meta()
        return int(self._meta.get("generation", 0))

    # -- touched-row deltas ----------------------------------------------------

    def _reset_delta_log(self) -> None:
        """Forget the delta history: everything before *now* is unknown."""
        self._delta_log = []
        self._delta_floor = (int(self._meta.get("generation", 0))
                             if self._meta else 0)

    def _record_delta(self, rows: np.ndarray) -> None:
        """Remember which rows the just-applied batch touched (post-bump)."""
        self._delta_log.append((self.generation,
                                np.unique(np.asarray(rows, dtype=np.int64))))
        while len(self._delta_log) > _DELTA_LOG_LIMIT:
            dropped_generation, _ = self._delta_log.pop(0)
            self._delta_floor = dropped_generation

    def touched_rows_since(self, generation: int) -> Optional[np.ndarray]:
        """Rows whose profile changed after ``generation``, or ``None``.

        ``None`` means the delta history cannot answer — the asked-about
        generation predates the tracked window, the store was fully
        rewritten, compacted, or :meth:`reload`-ed in between, or the
        generation is from the future.  Callers holding results keyed by
        ``generation`` (the phase-4 score cache) must then assume everything
        changed.  An empty array means "nothing changed" and a non-empty one
        is the exact union of rows touched by the intervening
        :meth:`apply_changes` batches.
        """
        self._require_meta()
        generation = int(generation)
        if generation > self.generation or generation < self._delta_floor:
            return None
        rows = [touched for gen, touched in self._delta_log if gen > generation]
        if not rows:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(rows))

    def touched_partitions_since(self, generation: int,
                                 partition_of: np.ndarray) -> Optional[np.ndarray]:
        """Partitions holding a row that changed after ``generation``, or ``None``.

        The partition-level rollup of :meth:`touched_rows_since` that
        dirty-partition scheduling plans against.  ``partition_of`` maps each
        row id to its partition for the *current* iteration — the store knows
        nothing about partitioning, so the caller supplies the assignment it
        is about to schedule with.

        The ``None`` contract is inherited verbatim, never widened: whenever
        the row-level answer is unknown (generation outside the tracked
        window, store rewritten, compacted or reloaded in between) this
        returns ``None`` — assume every partition is dirty.  An empty array
        means no partition changed; a non-empty one is the exact sorted set
        of partitions containing at least one touched row.
        """
        rows = self.touched_rows_since(generation)
        if rows is None:
            return None
        partition_of = np.asarray(partition_of, dtype=np.int64)
        if len(partition_of) != self.num_users:
            raise ValueError(
                f"partition_of maps {len(partition_of)} rows but the store "
                f"holds {self.num_users}"
            )
        if len(rows) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(partition_of[rows])

    def _require_meta(self) -> None:
        if self._meta is None:
            raise RuntimeError(
                f"no profile store has been created under {self._base_dir}; "
                "call OnDiskProfileStore.create() first"
            )

    def estimated_bytes_per_user(self) -> int:
        """Average on-disk profile size per user (memory-budget sizing)."""
        self._require_meta()
        if self._meta["kind"] == "dense":
            return self.dim * 8
        if self.num_users == 0:
            return 0
        if self.format_version >= 3:
            total_items = int(self._v3().row_sizes.sum())
            return max(8, (total_items * 8) // self.num_users)
        indptr_path = self._base_dir / self._SPARSE_INDPTR
        if not indptr_path.exists():
            return 0
        indptr = np.fromfile(indptr_path, dtype=np.int64)
        total_items = int(indptr[-1]) if len(indptr) else 0
        return max(8, (total_items * 8) // max(1, self.num_users))

    # -- slice loading ---------------------------------------------------------

    def _dense_maps(self) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """The store's read-only (matrix, norms) maps, opened once."""
        if self._dense_mapped is None:
            mm = np.memmap(self._base_dir / self._DENSE_NAME, dtype=np.float64,
                           mode="r", shape=(self.num_users, self.dim))
            norms_path = self._base_dir / self._NORMS_NAME
            norms_mm = (np.memmap(norms_path, dtype=np.float64, mode="r",
                                  shape=(self.num_users,))
                        if self.format_version >= 2 and norms_path.exists() else None)
            self._dense_mapped = (mm, norms_mm)
        return self._dense_mapped

    def _sparse_maps(self) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
        """The store's read-only v1/v2 (indptr, codes, item_ids) maps, opened once.

        Sharing one ``item_ids`` array across every slice also lets
        :meth:`ProfileSlice.merge` recognise same-store slices by identity
        instead of comparing item tables element-wise.
        """
        if self._sparse_mapped is None:
            indptr_mm = np.memmap(self._base_dir / self._SPARSE_INDPTR,
                                  dtype=np.int64, mode="r")
            codes_path = self._base_dir / self._SPARSE_ITEMS
            codes_mm = (np.memmap(codes_path, dtype=np.int64, mode="r")
                        if codes_path.stat().st_size else None)
            items_path = self._base_dir / self._SPARSE_ITEM_IDS
            item_ids = (np.memmap(items_path, dtype=np.int64, mode="r")
                        if items_path.exists() and items_path.stat().st_size
                        else np.empty(0, dtype=np.int64))
            self._sparse_mapped = (indptr_mm, codes_mm, item_ids)
        return self._sparse_mapped

    def _v3(self) -> _SparseV3State:
        """The segmented store's mapped segments, journal and derived indexes."""
        if self._v3_state is None:
            bounds = np.asarray(self._meta["segment_bounds"], dtype=np.int64)
            seg_indptr: List[np.ndarray] = []
            seg_codes: List[np.ndarray] = []
            empty = np.empty(0, dtype=np.int64)
            for index in range(len(bounds) - 1):
                ip_path = self._base_dir / self._SEG_INDPTR_TMPL.format(index)
                seg_indptr.append(np.memmap(ip_path, dtype=np.int64, mode="r"))
                codes_path = self._base_dir / self._SEG_CODES_TMPL.format(index)
                seg_codes.append(np.memmap(codes_path, dtype=np.int64, mode="r")
                                 if codes_path.stat().st_size else empty)
            items_path = self._base_dir / self._SPARSE_ITEM_IDS
            item_ids = (np.memmap(items_path, dtype=np.int64, mode="r")
                        if items_path.exists() and items_path.stat().st_size
                        else empty)
            # the journal is small by construction; plain reads keep it simple
            j_rows = self._read_int64(self._JOURNAL_ROWS)
            j_indptr = self._read_int64(self._JOURNAL_INDPTR)
            if not len(j_indptr):
                j_indptr = np.zeros(1, dtype=np.int64)
            j_codes = self._read_int64(self._JOURNAL_CODES)
            j_of = np.full(self.num_users, -1, dtype=np.int64)
            if len(j_rows):
                # assignment in append order makes the latest entry win
                j_of[j_rows] = np.arange(len(j_rows), dtype=np.int64)
            if seg_indptr:
                row_sizes = np.concatenate([np.diff(np.asarray(ip))
                                            for ip in seg_indptr])
            else:
                row_sizes = np.zeros(self.num_users, dtype=np.int64)
            if len(j_rows):
                row_sizes = row_sizes.copy()
                row_sizes[j_rows] = np.diff(j_indptr)
            self._v3_state = _SparseV3State(
                bounds=bounds, seg_indptr=seg_indptr, seg_codes=seg_codes,
                item_ids=item_ids, j_rows=j_rows, j_indptr=j_indptr,
                j_codes=j_codes, j_of=j_of, row_sizes=row_sizes)
        return self._v3_state

    def _read_int64(self, name: str) -> np.ndarray:
        path = self._base_dir / name
        if not path.exists() or not path.stat().st_size:
            return np.empty(0, dtype=np.int64)
        return np.fromfile(path, dtype=np.int64)

    def load_users(self, user_ids: Iterable[int]) -> ProfileSlice:
        """Load the profiles of ``user_ids`` into a :class:`ProfileSlice`.

        A single contiguous id run — the shape of one partition under the
        paper's contiguous split — is served *zero-copy*: the slice holds
        read-only views of the mapped profile (and norm / CSR segment)
        files.  Scattered ids, runs spanning several sparse segments and
        journaled rows fall back to one gathered copy.  Either way the read
        is charged through the disk model's mapped-read cost, per contiguous
        range.

        Because a zero-copy slice reads the live files, it is **not a
        snapshot**: a later :meth:`apply_changes` shows through dense
        mapped views (and invalidates sparse slices entirely, since sparse
        updates replace journal/segment files).  Phase 4 never holds a slice
        across a phase-5 update; callers that do must reload after applying
        changes — worker processes key this off :attr:`generation`.
        """
        ids = self._validated_ids(user_ids)
        self.charge_slice_read(ids, _validated=True)
        if self._meta["kind"] == "dense":
            return self._load_dense(ids)
        if self.format_version >= 3:
            return self._load_sparse_v3(ids)
        if self.format_version == 2:
            return self._load_sparse_v2(ids)
        return self._load_sparse_v1(ids)

    def _validated_ids(self, user_ids: Iterable[int]) -> List[int]:
        self._require_meta()
        ids = sorted({int(u) for u in user_ids})
        for user in ids:
            if not 0 <= user < self.num_users:
                raise IndexError(f"user {user} out of range (store has {self.num_users})")
        return ids

    def charge_slice_read(self, user_ids: Iterable[int], _validated: bool = False) -> None:
        """Charge (without loading) the I/O of one ``load_users`` call.

        The phase-4 process backend loads slices inside worker processes
        whose stats never reach the coordinating engine; the coordinator
        calls this once per partition load so IOStats stay comparable with
        the in-process backends.  The file page cache is shared between the
        processes, so charging the device once per slice is also the honest
        model.
        """
        ids = user_ids if _validated else self._validated_ids(user_ids)
        ranges = list(_contiguous_ranges(ids))
        if not ranges:
            return
        sequential = len(ranges) == 1
        if self._meta["kind"] == "dense":
            row_bytes = self.dim * 8 + (8 if self.format_version >= 2 else 0)
            for start, stop in ranges:
                nbytes = (stop - start) * row_bytes
                self.io_stats.record_read(
                    nbytes, self._disk.mapped_read_cost(nbytes, sequential=sequential))
            return
        if self.format_version >= 3:
            row_sizes = self._v3().row_sizes
            for start, stop in ranges:
                nbytes = (int(row_sizes[start:stop].sum())
                          + (stop - start + 1)) * 8
                self.io_stats.record_read(
                    nbytes, self._disk.mapped_read_cost(nbytes, sequential=sequential))
            return
        indptr = self._sparse_maps()[0]
        if self.format_version < 2:
            # the v1 loader reads the whole indptr array up front
            self.io_stats.record_read(indptr.nbytes,
                                      self._disk.read_cost(indptr.nbytes, sequential=True))
        for start, stop in ranges:
            nbytes = int(indptr[stop] - indptr[start]) * 8
            if self.format_version >= 2:
                nbytes += (stop - start + 1) * 8  # the indptr slice itself
            self.io_stats.record_read(
                nbytes, self._disk.mapped_read_cost(nbytes, sequential=sequential))

    def _load_dense(self, ids: List[int]) -> ProfileSlice:
        dim = self.dim
        if not ids:
            return ProfileSlice("dense", {}, dim=dim)
        mm, norms_mm = self._dense_maps()
        ranges = list(_contiguous_ranges(ids))
        if len(ranges) == 1:
            start, stop = ranges[0]
            matrix = mm[start:stop]  # zero-copy read-only view
            norms = norms_mm[start:stop] if norms_mm is not None else None
        else:
            ids_arr = np.asarray(ids, dtype=np.int64)
            matrix = np.asarray(mm[ids_arr])
            matrix.flags.writeable = False
            norms = np.asarray(norms_mm[ids_arr]) if norms_mm is not None else None
        return ProfileSlice("dense", None, dim=dim,
                            user_ids=np.asarray(ids, dtype=np.int64),
                            matrix=matrix, norms=norms)

    def _load_sparse_v3(self, ids: List[int]) -> ProfileSlice:
        num_items = int(self._meta.get("num_items", 0))
        state = self._v3()
        ids_arr = np.asarray(ids, dtype=np.int64)
        ranges = list(_contiguous_ranges(ids))
        if len(ranges) == 1:
            # zero-copy fast path: one id run inside one segment, with no
            # journaled rows — the common case when segment bounds follow the
            # engine's partition split and the journal has been compacted
            start, stop = ranges[0]
            seg = int(np.searchsorted(state.bounds, start, side="right")) - 1
            seg_end = int(np.searchsorted(state.bounds, stop - 1, side="right")) - 1
            if seg == seg_end and not (state.j_of[start:stop] >= 0).any():
                indptr_map = state.seg_indptr[seg]
                lo = start - int(state.bounds[seg])
                hi = stop - int(state.bounds[seg])
                base = int(indptr_map[lo])
                indptr = np.asarray(indptr_map[lo:hi + 1]) - base
                top = int(indptr_map[hi])
                codes = (state.seg_codes[seg][base:top] if top > base
                         else np.empty(0, dtype=np.int64))
                csr = _measures.SetProfileCSR(indptr, codes, num_items,
                                              item_ids=state.item_ids,
                                              rows_sorted=True)
                return ProfileSlice("sparse", None, user_ids=ids_arr, csr=csr)
        sizes = state.row_sizes[ids_arr]
        indptr = np.zeros(len(ids_arr) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        codes = np.empty(int(indptr[-1]), dtype=np.int64)
        journal_entry = state.j_of[ids_arr]
        journaled = journal_entry >= 0
        if journaled.any():
            _fill_rows(codes, indptr, np.flatnonzero(journaled),
                       state.j_indptr, state.j_codes, journal_entry[journaled])
        settled = ~journaled
        if settled.any():
            segments = np.searchsorted(state.bounds, ids_arr, side="right") - 1
            for seg in np.unique(segments[settled]):
                mask = settled & (segments == seg)
                _fill_rows(codes, indptr, np.flatnonzero(mask),
                           state.seg_indptr[seg], state.seg_codes[seg],
                           ids_arr[mask] - int(state.bounds[seg]))
        codes.flags.writeable = False
        csr = _measures.SetProfileCSR(indptr, codes, num_items,
                                      item_ids=state.item_ids, rows_sorted=True)
        return ProfileSlice("sparse", None, user_ids=ids_arr, csr=csr)

    def _load_sparse_v2(self, ids: List[int]) -> ProfileSlice:
        num_items = int(self._meta.get("num_items", 0))
        rows_sorted = bool(self._meta.get("row_codes_sorted", False))
        indptr_mm, codes_mm, item_ids = self._sparse_maps()
        empty = np.empty(0, dtype=np.int64)
        ranges = list(_contiguous_ranges(ids))
        if len(ranges) == 1:
            start, stop = ranges[0]
            base = int(indptr_mm[start])
            indptr = np.asarray(indptr_mm[start:stop + 1]) - base
            hi = int(indptr_mm[stop])
            codes = codes_mm[base:hi] if (codes_mm is not None and hi > base) else empty
        else:
            pieces: List[np.ndarray] = []
            sizes: List[np.ndarray] = []
            for start, stop in ranges:
                lo, hi = int(indptr_mm[start]), int(indptr_mm[stop])
                if codes_mm is not None and hi > lo:
                    pieces.append(np.asarray(codes_mm[lo:hi]))
                sizes.append(np.asarray(indptr_mm[start + 1:stop + 1])
                             - np.asarray(indptr_mm[start:stop]))
            codes = np.concatenate(pieces) if pieces else empty
            codes.flags.writeable = False
            all_sizes = np.concatenate(sizes) if sizes else empty
            indptr = np.zeros(len(ids) + 1, dtype=np.int64)
            np.cumsum(all_sizes, out=indptr[1:])
        csr = _measures.SetProfileCSR(indptr, codes, num_items, item_ids=item_ids,
                                      rows_sorted=rows_sorted)
        return ProfileSlice("sparse", None,
                            user_ids=np.asarray(ids, dtype=np.int64), csr=csr)

    def _load_sparse_v1(self, ids: List[int]) -> ProfileSlice:
        """Fallback loader for version-1 layouts (raw item ids on disk)."""
        indptr = np.fromfile(self._base_dir / self._SPARSE_INDPTR, dtype=np.int64)
        items_path = self._base_dir / self._SPARSE_ITEMS
        mm = np.memmap(items_path, dtype=np.int64, mode="r") if items_path.stat().st_size else None
        profiles: Dict[int, Set[int]] = {}
        for start, stop in _contiguous_ranges(ids):
            lo, hi = int(indptr[start]), int(indptr[stop])
            block = np.array(mm[lo:hi]) if (mm is not None and hi > lo) else np.empty(0, np.int64)
            for user in range(start, stop):
                ulo, uhi = int(indptr[user]) - lo, int(indptr[user + 1]) - lo
                profiles[user] = set(int(x) for x in block[ulo:uhi])
        if mm is not None:
            del mm
        return ProfileSlice("sparse", profiles)

    def _row_items_v3(self, state: _SparseV3State, row: int) -> Set[int]:
        """Decoded item-id set of one row (journal entry wins over segment)."""
        entry = int(state.j_of[row])
        if entry >= 0:
            codes = state.j_codes[state.j_indptr[entry]:state.j_indptr[entry + 1]]
        else:
            seg = int(np.searchsorted(state.bounds, row, side="right")) - 1
            local = row - int(state.bounds[seg])
            indptr_map = state.seg_indptr[seg]
            codes = state.seg_codes[seg][int(indptr_map[local]):
                                         int(indptr_map[local + 1])]
        if len(state.item_ids):
            return set(np.asarray(state.item_ids)[np.asarray(codes)].tolist())
        return set(np.asarray(codes).tolist())

    def load_all(self) -> ProfileStoreBase:
        """Load the entire store back into memory (tests and small runs)."""
        self._require_meta()
        if self._meta["kind"] == "dense":
            path = self._base_dir / self._DENSE_NAME
            matrix = np.fromfile(path, dtype=np.float64).reshape(self.num_users, self.dim)
            self.io_stats.record_read(matrix.nbytes,
                                      self._disk.read_cost(matrix.nbytes, sequential=True))
            return DenseProfileStore(matrix, copy=False)
        if self.format_version >= 3:
            state = self._v3()
            total = (sum(np.asarray(ip).nbytes for ip in state.seg_indptr)
                     + sum(np.asarray(c).nbytes for c in state.seg_codes)
                     + np.asarray(state.item_ids).nbytes
                     + state.j_rows.nbytes + state.j_indptr.nbytes
                     + state.j_codes.nbytes)
            self.io_stats.record_read(total,
                                      self._disk.read_cost(total, sequential=True))
            return SparseProfileStore([self._row_items_v3(state, row)
                                       for row in range(self.num_users)])
        indptr = np.fromfile(self._base_dir / self._SPARSE_INDPTR, dtype=np.int64)
        items = np.fromfile(self._base_dir / self._SPARSE_ITEMS, dtype=np.int64)
        total = indptr.nbytes + items.nbytes
        if self.format_version >= 2:
            item_ids = np.fromfile(self._base_dir / self._SPARSE_ITEM_IDS, dtype=np.int64)
            total += item_ids.nbytes
            items = item_ids[items] if len(items) else items
        self.io_stats.record_read(total, self._disk.read_cost(total, sequential=True))
        profiles = [set(items[indptr[u]:indptr[u + 1]].tolist())
                    for u in range(self.num_users)]
        return SparseProfileStore(profiles)

    # -- updates (phase 5) -----------------------------------------------------

    def apply_changes(self, changes: Sequence[ProfileChange]) -> int:
        """Apply a batch of queued profile changes (the paper's lazy update).

        Returns the number of users whose profile was touched.  Dense
        changes are in-place row writes through a writable memmap (the norm
        file is kept in sync, superseded ``set`` changes coalesced to the
        last write).  Segmented (v3) sparse changes append the touched rows
        to the row-remap journal — write bytes scale with the touched rows —
        and fold the journal into the affected segments only when it
        outgrows its cap.  Older sparse layouts rewrite the files, which
        also upgrades them to the current format.  Every applied batch bumps
        the store :attr:`generation`.
        """
        self._require_meta()
        if not changes:
            return 0
        if self._meta["kind"] == "dense":
            return self._apply_dense(changes)
        if self.format_version >= 3:
            return self._apply_sparse_v3(changes)
        return self._apply_sparse_rewrite(changes)

    def _apply_dense(self, changes: Sequence[ProfileChange]) -> int:
        dim = self.dim
        latest = DenseProfileStore.coalesce_set_changes(changes, dim)
        for user in latest:
            # a negative id would wrap through the memmap onto another row
            if not 0 <= user < self.num_users:
                raise IndexError(f"user {user} out of range (store has {self.num_users})")
        path = self._base_dir / self._DENSE_NAME
        mm = np.memmap(path, dtype=np.float64, mode="r+", shape=(self.num_users, dim))
        norms_path = self._base_dir / self._NORMS_NAME
        norms_mm = (np.memmap(norms_path, dtype=np.float64, mode="r+",
                              shape=(self.num_users,))
                    if self.format_version >= 2 and norms_path.exists() else None)
        for user, vector in latest.items():
            mm[user] = vector
            num_bytes = vector.nbytes
            if norms_mm is not None:
                # np.sum reduces pairwise exactly like the axis-1 norm used
                # at write time, so stored and recomputed norms stay bitwise equal
                norms_mm[user] = np.sqrt(np.sum(vector * vector))
                num_bytes += 8
            self.io_stats.record_write(
                num_bytes, self._disk.mapped_write_cost(num_bytes, sequential=False))
        if self.fault_plan is not None:
            # crash window: rows written in place, meta/generation not yet
            # bumped — recovery must fall back to the last committed epoch
            self.fault_plan.point("store.dense_rows_written")
        mm.flush()
        self._set_crc(self._DENSE_NAME, mm.tobytes())
        del mm
        if norms_mm is not None:
            norms_mm.flush()
            self._set_crc(self._NORMS_NAME, norms_mm.tobytes())
            del norms_mm
        self._bump_generation()
        self._record_delta(np.asarray(sorted(latest), dtype=np.int64))
        return len(latest)

    def _apply_sparse_rewrite(self, changes: Sequence[ProfileChange]) -> int:
        """Full-rewrite path for pre-segmented layouts (upgrades them in place)."""
        store = self.load_all()
        touched = store.apply_profile_changes(changes)
        self._write_full(store)
        return touched

    def _apply_sparse_v3(self, changes: Sequence[ProfileChange]) -> int:
        state = self._v3()
        # decode the touched rows once, then replay the changes in order
        sets: Dict[int, Set[int]] = {}
        for change in changes:
            if change.kind not in ("add", "remove"):
                raise ValueError("sparse profile stores only accept 'add'/'remove' changes")
            user = int(change.user)
            if not 0 <= user < self.num_users:
                raise IndexError(f"user {user} out of range (store has {self.num_users})")
            if user not in sets:
                sets[user] = self._row_items_v3(state, user)
            if change.kind == "add":
                sets[user].add(change.item)
            else:
                sets[user].discard(change.item)
        # extend the append-only item table with any never-seen items; codes
        # of existing rows stay valid, so no segment needs recoding.  The
        # id→code map is cached across batches (and extended in place on
        # append), so a small batch never pays an O(catalogue) rebuild.
        code_of = self._item_code_map(state)
        new_items = sorted({item for items in sets.values() for item in items
                            if item not in code_of})
        appended_bytes = 0
        if new_items:
            arr = np.asarray(new_items, dtype=np.int64)
            self._append_file(self._SPARSE_ITEM_IDS, arr)
            for item in new_items:
                code_of[item] = len(code_of)
            appended_bytes += arr.nbytes
            self._meta["num_items"] = len(code_of)
        # append the touched rows' new contents to the journal (latest wins)
        rows = np.asarray(sorted(sets), dtype=np.int64)
        row_codes = [np.sort(np.fromiter((code_of[item] for item in sets[int(row)]),
                                         dtype=np.int64, count=len(sets[int(row)])))
                     for row in rows]
        new_codes = (np.concatenate(row_codes) if row_codes
                     else np.empty(0, dtype=np.int64))
        sizes = np.fromiter((len(c) for c in row_codes), dtype=np.int64,
                            count=len(row_codes))
        journal_indptr = np.concatenate(
            [state.j_indptr, int(state.j_indptr[-1]) + np.cumsum(sizes)])
        self._append_file(self._JOURNAL_ROWS, rows)
        self._append_file(self._JOURNAL_CODES, new_codes)
        _atomic_tofile(journal_indptr, self._base_dir / self._JOURNAL_INDPTR,
                       self.fault_plan)
        self._set_crc(self._JOURNAL_INDPTR, journal_indptr)
        if self.fault_plan is not None:
            # crash window: journal appended, meta/generation not yet bumped
            self.fault_plan.point("store.journal_appended")
        self._meta["journal_entries"] = len(state.j_rows) + len(rows)
        written = rows.nbytes + new_codes.nbytes + journal_indptr.nbytes + appended_bytes
        self.io_stats.record_write(
            written, self._disk.mapped_write_cost(written, sequential=True))
        self._v3_state = None
        compacted = False
        if self._meta["journal_entries"] > self._journal_limit():
            self._compact_v3()
            compacted = True
        self._bump_generation()
        if compacted:
            # compaction replaces segment files wholesale; treat it as a
            # generation rollover and restart the delta history, so cached
            # scores keyed on pre-compaction generations are fully rescored
            self._reset_delta_log()
        else:
            self._record_delta(rows)
        return len(sets)

    def _append_file(self, name: str, data: np.ndarray) -> None:
        """Append to one of the store's append-only files.

        Rolls the file's running CRC32 forward over the appended bytes and
        consults the fault plan around the write (appends are a distinct
        torn-write surface from the atomic-replace paths).
        """
        path = self._base_dir / name
        if self.fault_plan is not None:
            self.fault_plan.file_op("write", path)
        with path.open("ab") as handle:
            handle.write(data.tobytes())
        if self.fault_plan is not None:
            self.fault_plan.after_file_op("write", path)
        self._extend_crc(name, data)

    def _item_code_map(self, state: _SparseV3State) -> Dict[int, int]:
        """The item-id→code dict, built once per (re)coding of the table."""
        if self._item_code_cache is None:
            item_table = np.asarray(state.item_ids, dtype=np.int64)
            self._item_code_cache = {int(item): code
                                     for code, item in enumerate(item_table.tolist())}
        return self._item_code_cache

    def _journal_limit(self) -> int:
        if self._journal_limit_override is not None:
            return int(self._journal_limit_override)
        num_segments = max(1, len(self._meta["segment_bounds"]) - 1)
        return max(64, -(-self.num_users // num_segments))

    def _compact_v3(self) -> None:
        """Fold the journal back into the segments holding journaled rows.

        Only the touched segments are rewritten — the amortised write cost of
        an update stream stays proportional to the rows it changed, never the
        store size.
        """
        state = self._v3()
        if not len(state.j_rows):
            return
        journaled_rows = np.unique(state.j_rows)
        segments = np.unique(
            np.searchsorted(state.bounds, journaled_rows, side="right") - 1)
        total = 0
        for seg in segments:
            lo, hi = int(state.bounds[seg]), int(state.bounds[seg + 1])
            sizes = state.row_sizes[lo:hi]
            indptr = np.zeros(hi - lo + 1, dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            codes = np.empty(int(indptr[-1]), dtype=np.int64)
            entry = state.j_of[lo:hi]
            journaled = entry >= 0
            _fill_rows(codes, indptr, np.flatnonzero(journaled),
                       state.j_indptr, state.j_codes, entry[journaled])
            settled = np.flatnonzero(~journaled)
            _fill_rows(codes, indptr, settled,
                       state.seg_indptr[seg], state.seg_codes[seg], settled)
            # release the mapped views of this segment before replacing it
            state.seg_indptr[seg] = indptr
            state.seg_codes[seg] = codes
            _atomic_tofile(indptr, self._base_dir / self._SEG_INDPTR_TMPL.format(int(seg)),
                           self.fault_plan)
            _atomic_tofile(codes, self._base_dir / self._SEG_CODES_TMPL.format(int(seg)),
                           self.fault_plan)
            self._set_crc(self._SEG_INDPTR_TMPL.format(int(seg)), indptr)
            self._set_crc(self._SEG_CODES_TMPL.format(int(seg)), codes)
            total += indptr.nbytes + codes.nbytes
        for name in (self._JOURNAL_ROWS, self._JOURNAL_INDPTR, self._JOURNAL_CODES):
            _atomic_write_bytes(b"", self._base_dir / name, self.fault_plan)
            self._set_crc(name, b"")
        self._meta["journal_entries"] = 0
        self.io_stats.record_write(total,
                                   self._disk.write_cost(total, sequential=True))
        self._v3_state = None

    def _bump_generation(self) -> None:
        self._meta["generation"] = int(self._meta.get("generation", 0)) + 1
        self._write_meta()

    def _write_meta(self) -> None:
        """Publish ``profiles_meta.json`` atomically (fsync + rename).

        Worker processes poll this file for the generation counter; a torn
        or unsynced meta would desynchronise their cached maps from the
        segment files it describes.
        """
        _atomic_write_bytes(json.dumps(self._meta).encode("utf-8"),
                            self._base_dir / self._META_NAME)

    # -- checksums -------------------------------------------------------------

    def _set_crc(self, name: str, data) -> None:
        """Record a file's CRC32 in the meta (persisted by the next meta write)."""
        blob = data.tobytes() if isinstance(data, np.ndarray) else data
        self._meta.setdefault("crc32", {})[name] = zlib.crc32(blob)

    def _extend_crc(self, name: str, appended) -> None:
        """Roll an append-only file's CRC forward over the appended bytes.

        ``crc32(old + new) == crc32(new, crc32(old))`` — the running value in
        the meta is advanced without re-reading the file.
        """
        blob = appended.tobytes() if isinstance(appended, np.ndarray) else appended
        crcs = self._meta.setdefault("crc32", {})
        crcs[name] = zlib.crc32(blob, int(crcs.get(name, 0)))

    def verify_checksums(self, strict: bool = False) -> List[str]:
        """Check every recorded file CRC32 against the bytes on disk.

        Returns the names of mismatching (or missing) files.  Stores written
        before checksums existed record none and verify vacuously — recovery
        then falls back on the checkpoint-level ``checksums.json``.  With
        ``strict=True`` a non-empty result raises
        :class:`StoreCorruptionError` instead.

        Verification reads every store file, so it runs at the durability
        boundaries only — open/reload with ``verify=True``, commit, and
        crash recovery — never per slice load.
        """
        self._require_meta()
        recorded = self._meta.get("crc32") or {}
        mismatched: List[str] = []
        for name, expected in sorted(recorded.items()):
            path = self._base_dir / name
            if not path.exists():
                mismatched.append(name)
                continue
            if zlib.crc32(path.read_bytes()) != int(expected):
                mismatched.append(name)
        if mismatched and strict:
            raise StoreCorruptionError(
                f"profile store under {self._base_dir} is corrupt; CRC32 "
                f"mismatch in: {', '.join(mismatched)}")
        return mismatched


def _contiguous_ranges(sorted_ids: Sequence[int]):
    """Yield (start, stop) half-open ranges covering runs of consecutive ids."""
    if not sorted_ids:
        return
    start = prev = sorted_ids[0]
    for value in sorted_ids[1:]:
        if value == prev + 1:
            prev = value
            continue
        yield (start, prev + 1)
        start = prev = value
    yield (start, prev + 1)
