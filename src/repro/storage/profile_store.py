"""On-disk user-profile storage.

Profiles are kept on disk between phases and only the rows needed for the
currently-loaded pair of partitions are brought into memory (phase 4 loads
"the profiles of at most two partitions").  Two encodings mirror the
in-memory stores:

* dense — a ``float64`` matrix file plus a precomputed per-row norm file,
  both accessed through ``numpy.memmap``; a contiguous partition's slice is
  served *zero-copy* as a read-only view of the mapped files, and profile
  updates (phase 5) are in-place row writes;
* sparse — the store's CSR incidence arrays (``indptr``, item *codes* and
  the code→item-id table) written in row order, so a contiguous partition's
  slice is a pure slice of the mapped arrays with no per-user set
  materialisation; updates rewrite the files (sizes change), which matches
  the paper's lazy batch-update semantics.

The on-disk layout is versioned (``format_version`` in the meta file).
Version-1 stores — dense without the norm file, sparse with raw item ids
instead of codes — are still readable through a fallback loader.

Every operation is charged to the configured disk model and recorded in
:class:`~repro.storage.io_stats.IOStats`.  Mapped reads are charged through
:meth:`~repro.storage.disk_model.DiskModel.mapped_read_cost` (page-granular
demand paging) at slice-load time, which is also exposed as
:meth:`OnDiskProfileStore.charge_slice_read` so a coordinating process can
account for reads its worker processes perform against the same files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.similarity import measures as _measures
from repro.similarity.profiles import DenseProfileStore, ProfileStoreBase, SparseProfileStore
from repro.similarity.workloads import ProfileChange
from repro.storage.disk_model import DiskModel, get_disk_model
from repro.storage.io_stats import IOStats

PathLike = Union[str, os.PathLike]

#: Current on-disk layout version (see module docstring for the history).
FORMAT_VERSION = 2


class ProfileSlice:
    """Profiles of a subset of users, loaded into memory for similarity scoring.

    Construction precomputes an id→row translation — a plain offset when the
    user ids are one contiguous run (the common case for the paper's
    contiguous partitioner), a lookup array otherwise — and packs the
    profiles into a batch-scorable form: a dense matrix (plus row norms) or
    a CSR incidence matrix, so that :meth:`similarity_pairs` is pure NumPy
    with no per-pair Python on either profile kind.  Slices served from a
    mapped store hold read-only views of the mapped file; nothing in the
    scoring path writes through them.
    """

    def __init__(self, kind: str, profiles: Optional[Dict[int, object]], dim: int = 0,
                 *, user_ids: Optional[np.ndarray] = None,
                 matrix: Optional[np.ndarray] = None,
                 norms: Optional[np.ndarray] = None,
                 csr: Optional[_measures.SetProfileCSR] = None):
        if kind not in ("sparse", "dense"):
            raise ValueError(f"kind must be 'sparse' or 'dense', got {kind!r}")
        self.kind = kind
        self._dim = dim
        if profiles is not None:
            self._user_ids = np.asarray(sorted(profiles), dtype=np.int64)
        elif user_ids is not None and (matrix is not None or csr is not None):
            # array fast path: rows correspond to the (sorted) ``user_ids``,
            # no per-user dict required
            self._user_ids = np.asarray(user_ids, dtype=np.int64)
        else:
            raise ValueError("provide a profiles dict, or user_ids plus matrix/csr")
        users = self._user_ids
        if len(users) and int(users[-1]) - int(users[0]) + 1 == len(users):
            # contiguous run: id→row is an offset, no lookup allocation
            self._row_start: Optional[int] = int(users[0])
            self._row_of: Optional[np.ndarray] = None
        else:
            self._row_start = None
            if len(users):
                self._row_of = np.full(int(users[-1]) + 1, -1, dtype=np.int64)
                self._row_of[users] = np.arange(len(users), dtype=np.int64)
            else:
                self._row_of = np.empty(0, dtype=np.int64)
        if kind == "dense":
            if matrix is not None:
                self._matrix = matrix
            elif profiles:
                self._matrix = np.vstack([profiles[int(user)] for user in users])
            else:
                self._matrix = np.zeros((0, dim), dtype=np.float64)
            self._dim = self._matrix.shape[1] if self._matrix.size else dim
            self._csr = None
            self._profiles = None
            self._norms = (np.asarray(norms, dtype=np.float64) if norms is not None
                           else np.linalg.norm(self._matrix, axis=1))
        else:
            self._matrix = None
            self._norms = None
            if csr is not None:
                self._profiles = None
                self._csr = csr
            else:
                self._profiles = profiles
                self._csr = _measures.SetProfileCSR.from_sets(
                    [profiles[int(user)] for user in users])

    def _rows_for(self, user_ids: np.ndarray) -> np.ndarray:
        """Map loaded user ids to row indices, raising ``KeyError`` on misses."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        if self._row_start is not None:
            rows = user_ids - self._row_start
            bad = (rows < 0) | (rows >= len(self._user_ids))
        else:
            rows = np.full(len(user_ids), -1, dtype=np.int64)
            in_range = (user_ids >= 0) & (user_ids < len(self._row_of))
            rows[in_range] = self._row_of[user_ids[in_range]]
            bad = rows < 0
        if bad.any():
            missing = int(user_ids[bad][0])
            raise KeyError(f"user {missing} is not loaded in this profile slice")
        return rows

    @property
    def users(self) -> Set[int]:
        return set(self._user_ids.tolist())

    @property
    def user_ids(self) -> np.ndarray:
        """The loaded user ids, sorted ascending (do not mutate)."""
        return self._user_ids

    @property
    def matrix(self) -> Optional[np.ndarray]:
        """The dense profile matrix (``None`` for sparse slices)."""
        return self._matrix

    def __len__(self) -> int:
        return len(self._user_ids)

    def __contains__(self, user: int) -> bool:
        if self._row_start is not None:
            return self._row_start <= user < self._row_start + len(self._user_ids)
        return bool(0 <= user < len(self._row_of) and self._row_of[user] >= 0)

    def get(self, user: int):
        if self.kind == "sparse":
            if self._profiles is not None:
                try:
                    return self._profiles[user]
                except KeyError:
                    raise KeyError(
                        f"user {user} is not loaded in this profile slice") from None
            row = int(self._rows_for(np.asarray([user], dtype=np.int64))[0])
            return set(self._csr.row_items(row).tolist())
        row = self._rows_for(np.asarray([user], dtype=np.int64))[0]
        return self._matrix[row]

    def _as_profiles_dict(self) -> Dict[int, object]:
        """Sparse slice as a ``user -> item set`` dict (merge fallback)."""
        if self._profiles is not None:
            return dict(self._profiles)
        return {int(user): self.get(int(user)) for user in self._user_ids}

    def merge(self, other: "ProfileSlice") -> "ProfileSlice":
        """Union of two slices (used when both partitions' profiles are resident)."""
        if other.kind != self.kind:
            raise ValueError("cannot merge slices of different profile kinds")
        if self.kind == "sparse":
            if self._mergeable_csr(other):
                return self._merge_sparse_arrays(other)
            combined = self._as_profiles_dict()
            combined.update(other._as_profiles_dict())
            return ProfileSlice(self.kind, combined, dim=self._dim or other._dim)
        # dense: concatenate the row blocks, keeping the other slice's row for
        # any user present in both (dict.update semantics)
        users = np.concatenate([self._user_ids, other._user_ids])
        matrix = np.concatenate([self._matrix, other._matrix], axis=0)
        norms = np.concatenate([self._norms, other._norms])
        order = np.argsort(users, kind="stable")
        users, matrix, norms = users[order], matrix[order], norms[order]
        if len(users) > 1:
            last = np.empty(len(users), dtype=bool)
            last[-1] = True
            np.not_equal(users[:-1], users[1:], out=last[:-1])
            users, matrix, norms = users[last], matrix[last], norms[last]
        return ProfileSlice(self.kind, None, dim=self._dim or other._dim,
                            user_ids=users, matrix=matrix, norms=norms)

    def _mergeable_csr(self, other: "ProfileSlice") -> bool:
        """True when both sparse slices hold CSRs under one item coding."""
        if self._profiles is not None or other._profiles is not None:
            return False
        a, b = self._csr.item_ids, other._csr.item_ids
        if self._csr.num_items != other._csr.num_items:
            return False
        if a is None or b is None:
            # raw-code CSRs: equal code spaces are only comparable when both
            # lack a decode table (codes are then the item ids themselves)
            return a is None and b is None
        # slices from one store share the store's single mapped item table,
        # so identity settles the common case without an O(num_items) scan
        return a is b or np.array_equal(a, b)

    def _merge_sparse_arrays(self, other: "ProfileSlice") -> "ProfileSlice":
        users = np.concatenate([self._user_ids, other._user_ids])
        rows = np.arange(len(users), dtype=np.int64)
        order = np.argsort(users, kind="stable")
        users, rows = users[order], rows[order]
        if len(users) > 1:
            # stable sort keeps other's row after self's for a shared user;
            # keeping the last occurrence reproduces dict.update semantics
            last = np.empty(len(users), dtype=bool)
            last[-1] = True
            np.not_equal(users[:-1], users[1:], out=last[:-1])
            users, rows = users[last], rows[last]
        merged = _measures.SetProfileCSR.merged_subset(self._csr, other._csr, rows)
        return ProfileSlice("sparse", None, dim=self._dim or other._dim,
                            user_ids=users, csr=merged)

    def similarity_pairs(self, pairs: np.ndarray, measure: str) -> np.ndarray:
        """Vectorised similarity for an ``(n, 2)`` array of loaded user ids."""
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must be an (n, 2) array")
        if len(pairs) == 0:
            return np.zeros(0, dtype=np.float64)
        _measures.get_measure(measure)
        if self.kind == "dense":
            if measure in _measures.SET_MEASURES:
                raise ValueError(f"measure {measure!r} needs sparse profiles")
            left_rows = self._rows_for(pairs[:, 0])
            right_rows = self._rows_for(pairs[:, 1])
            if measure == "cosine":
                # row norms are precomputed once per slice (or read straight
                # from the store's norm file)
                return _measures.cosine_from_norms(
                    self._matrix[left_rows], self._matrix[right_rows],
                    self._norms[left_rows], self._norms[right_rows])
            return _measures.vector_measure_batch(
                measure, self._matrix[left_rows], self._matrix[right_rows])
        if measure not in _measures.SET_MEASURES:
            raise ValueError(f"measure {measure!r} needs dense profiles")
        left_rows = self._rows_for(pairs[:, 0])
        right_rows = self._rows_for(pairs[:, 1])
        return self._csr.measure_pairs(measure, left_rows, right_rows)


class OnDiskProfileStore:
    """Persistent profile storage with partial (per-partition) loading."""

    _META_NAME = "profiles_meta.json"
    _DENSE_NAME = "profiles_dense.bin"
    _NORMS_NAME = "profiles_norms.bin"
    _SPARSE_INDPTR = "profiles_indptr.bin"
    _SPARSE_ITEMS = "profiles_items.bin"      # v1: raw item ids; v2: item codes
    _SPARSE_ITEM_IDS = "profiles_item_ids.bin"  # v2 only: code→item-id table

    def __init__(self, base_dir: PathLike, disk_model: Union[str, DiskModel] = "ssd",
                 io_stats: Optional[IOStats] = None):
        self._base_dir = Path(base_dir)
        self._base_dir.mkdir(parents=True, exist_ok=True)
        self._disk = get_disk_model(disk_model)
        self.io_stats = io_stats if io_stats is not None else IOStats()
        self._meta: Optional[dict] = None
        # lazily-opened memory maps shared by every slice this store serves
        # (invalidated when a rewrite replaces the files)
        self._dense_mapped: Optional[Tuple[np.ndarray, Optional[np.ndarray]]] = None
        self._sparse_mapped: Optional[
            Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]] = None
        meta_path = self._base_dir / self._META_NAME
        if meta_path.exists():
            self._meta = json.loads(meta_path.read_text())

    # -- creation ------------------------------------------------------------

    @classmethod
    def create(cls, base_dir: PathLike, store: ProfileStoreBase,
               disk_model: Union[str, DiskModel] = "ssd",
               io_stats: Optional[IOStats] = None) -> "OnDiskProfileStore":
        """Persist an in-memory profile store and return the on-disk handle."""
        on_disk = cls(base_dir, disk_model=disk_model, io_stats=io_stats)
        on_disk._write_full(store)
        return on_disk

    def _write_full(self, store: ProfileStoreBase) -> None:
        if isinstance(store, DenseProfileStore):
            matrix = store.matrix.astype(np.float64)
            matrix.tofile(self._base_dir / self._DENSE_NAME)
            norms = np.linalg.norm(matrix, axis=1)
            norms.tofile(self._base_dir / self._NORMS_NAME)
            self._meta = {"kind": "dense", "num_users": store.num_users,
                          "dim": store.dim, "format_version": FORMAT_VERSION}
            total = matrix.nbytes + norms.nbytes
            self.io_stats.record_write(total,
                                       self._disk.write_cost(total, sequential=True))
        elif isinstance(store, SparseProfileStore):
            csr = store.incidence()
            indptr = np.asarray(csr.indptr, dtype=np.int64)
            codes = np.asarray(csr.codes, dtype=np.int64)
            item_ids = (np.asarray(csr.item_ids, dtype=np.int64)
                        if csr.item_ids is not None else np.empty(0, dtype=np.int64))
            indptr.tofile(self._base_dir / self._SPARSE_INDPTR)
            codes.tofile(self._base_dir / self._SPARSE_ITEMS)
            item_ids.tofile(self._base_dir / self._SPARSE_ITEM_IDS)
            self._meta = {"kind": "sparse", "num_users": store.num_users,
                          "num_items": csr.num_items,
                          "format_version": FORMAT_VERSION}
            total = indptr.nbytes + codes.nbytes + item_ids.nbytes
            self.io_stats.record_write(total, self._disk.write_cost(total, sequential=True))
        else:
            raise TypeError(f"unsupported profile store type: {type(store).__name__}")
        (self._base_dir / self._META_NAME).write_text(json.dumps(self._meta))
        # the rewrite replaced the files; open maps point at dead data
        self._dense_mapped = None
        self._sparse_mapped = None

    # -- queries --------------------------------------------------------------

    @property
    def base_dir(self) -> Path:
        """Directory holding the store's files (worker processes re-open by path)."""
        return self._base_dir

    @property
    def kind(self) -> str:
        self._require_meta()
        return self._meta["kind"]

    @property
    def num_users(self) -> int:
        self._require_meta()
        return int(self._meta["num_users"])

    @property
    def dim(self) -> int:
        self._require_meta()
        return int(self._meta.get("dim", 0))

    @property
    def format_version(self) -> int:
        """On-disk layout version (1 = pre-norms/raw-item layout)."""
        self._require_meta()
        return int(self._meta.get("format_version", 1))

    def _require_meta(self) -> None:
        if self._meta is None:
            raise RuntimeError(
                f"no profile store has been created under {self._base_dir}; "
                "call OnDiskProfileStore.create() first"
            )

    def estimated_bytes_per_user(self) -> int:
        """Average on-disk profile size per user (memory-budget sizing)."""
        self._require_meta()
        if self._meta["kind"] == "dense":
            return self.dim * 8
        indptr_path = self._base_dir / self._SPARSE_INDPTR
        if not indptr_path.exists() or self.num_users == 0:
            return 0
        indptr = np.fromfile(indptr_path, dtype=np.int64)
        total_items = int(indptr[-1]) if len(indptr) else 0
        return max(8, (total_items * 8) // max(1, self.num_users))

    # -- slice loading ---------------------------------------------------------

    def _dense_maps(self) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """The store's read-only (matrix, norms) maps, opened once."""
        if self._dense_mapped is None:
            mm = np.memmap(self._base_dir / self._DENSE_NAME, dtype=np.float64,
                           mode="r", shape=(self.num_users, self.dim))
            norms_path = self._base_dir / self._NORMS_NAME
            norms_mm = (np.memmap(norms_path, dtype=np.float64, mode="r",
                                  shape=(self.num_users,))
                        if self.format_version >= 2 and norms_path.exists() else None)
            self._dense_mapped = (mm, norms_mm)
        return self._dense_mapped

    def _sparse_maps(self) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
        """The store's read-only (indptr, codes, item_ids) maps, opened once.

        Sharing one ``item_ids`` array across every slice also lets
        :meth:`ProfileSlice.merge` recognise same-store slices by identity
        instead of comparing item tables element-wise.
        """
        if self._sparse_mapped is None:
            indptr_mm = np.memmap(self._base_dir / self._SPARSE_INDPTR,
                                  dtype=np.int64, mode="r")
            codes_path = self._base_dir / self._SPARSE_ITEMS
            codes_mm = (np.memmap(codes_path, dtype=np.int64, mode="r")
                        if codes_path.stat().st_size else None)
            items_path = self._base_dir / self._SPARSE_ITEM_IDS
            item_ids = (np.memmap(items_path, dtype=np.int64, mode="r")
                        if items_path.exists() and items_path.stat().st_size
                        else np.empty(0, dtype=np.int64))
            self._sparse_mapped = (indptr_mm, codes_mm, item_ids)
        return self._sparse_mapped

    def load_users(self, user_ids: Iterable[int]) -> ProfileSlice:
        """Load the profiles of ``user_ids`` into a :class:`ProfileSlice`.

        A single contiguous id run — the shape of one partition under the
        paper's contiguous split — is served *zero-copy*: the slice holds
        read-only views of the mapped profile (and norm / CSR) files.
        Scattered ids fall back to one gathered copy.  Either way the read
        is charged through the disk model's mapped-read cost, per contiguous
        range.

        Because a zero-copy slice reads the live files, it is **not a
        snapshot**: a later :meth:`apply_changes` shows through dense
        mapped views (and invalidates sparse slices entirely, since sparse
        rewrites replace the files).  Phase 4 never holds a slice across a
        phase-5 update; callers that do must reload after applying changes.
        """
        ids = self._validated_ids(user_ids)
        self.charge_slice_read(ids, _validated=True)
        if self._meta["kind"] == "dense":
            return self._load_dense(ids)
        if self.format_version >= 2:
            return self._load_sparse_v2(ids)
        return self._load_sparse_v1(ids)

    def _validated_ids(self, user_ids: Iterable[int]) -> List[int]:
        self._require_meta()
        ids = sorted({int(u) for u in user_ids})
        for user in ids:
            if not 0 <= user < self.num_users:
                raise IndexError(f"user {user} out of range (store has {self.num_users})")
        return ids

    def charge_slice_read(self, user_ids: Iterable[int], _validated: bool = False) -> None:
        """Charge (without loading) the I/O of one ``load_users`` call.

        The phase-4 process backend loads slices inside worker processes
        whose stats never reach the coordinating engine; the coordinator
        calls this once per partition load so IOStats stay comparable with
        the in-process backends.  The file page cache is shared between the
        processes, so charging the device once per slice is also the honest
        model.
        """
        ids = user_ids if _validated else self._validated_ids(user_ids)
        ranges = list(_contiguous_ranges(ids))
        if not ranges:
            return
        sequential = len(ranges) == 1
        if self._meta["kind"] == "dense":
            row_bytes = self.dim * 8 + (8 if self.format_version >= 2 else 0)
            for start, stop in ranges:
                nbytes = (stop - start) * row_bytes
                self.io_stats.record_read(
                    nbytes, self._disk.mapped_read_cost(nbytes, sequential=sequential))
            return
        indptr = self._sparse_maps()[0]
        if self.format_version < 2:
            # the v1 loader reads the whole indptr array up front
            self.io_stats.record_read(indptr.nbytes,
                                      self._disk.read_cost(indptr.nbytes, sequential=True))
        for start, stop in ranges:
            nbytes = int(indptr[stop] - indptr[start]) * 8
            if self.format_version >= 2:
                nbytes += (stop - start + 1) * 8  # the indptr slice itself
            self.io_stats.record_read(
                nbytes, self._disk.mapped_read_cost(nbytes, sequential=sequential))

    def _load_dense(self, ids: List[int]) -> ProfileSlice:
        dim = self.dim
        if not ids:
            return ProfileSlice("dense", {}, dim=dim)
        mm, norms_mm = self._dense_maps()
        ranges = list(_contiguous_ranges(ids))
        if len(ranges) == 1:
            start, stop = ranges[0]
            matrix = mm[start:stop]  # zero-copy read-only view
            norms = norms_mm[start:stop] if norms_mm is not None else None
        else:
            ids_arr = np.asarray(ids, dtype=np.int64)
            matrix = np.asarray(mm[ids_arr])
            matrix.flags.writeable = False
            norms = np.asarray(norms_mm[ids_arr]) if norms_mm is not None else None
        return ProfileSlice("dense", None, dim=dim,
                            user_ids=np.asarray(ids, dtype=np.int64),
                            matrix=matrix, norms=norms)

    def _load_sparse_v2(self, ids: List[int]) -> ProfileSlice:
        num_items = int(self._meta.get("num_items", 0))
        indptr_mm, codes_mm, item_ids = self._sparse_maps()
        empty = np.empty(0, dtype=np.int64)
        ranges = list(_contiguous_ranges(ids))
        if len(ranges) == 1:
            start, stop = ranges[0]
            base = int(indptr_mm[start])
            indptr = np.asarray(indptr_mm[start:stop + 1]) - base
            hi = int(indptr_mm[stop])
            codes = codes_mm[base:hi] if (codes_mm is not None and hi > base) else empty
        else:
            pieces: List[np.ndarray] = []
            sizes: List[np.ndarray] = []
            for start, stop in ranges:
                lo, hi = int(indptr_mm[start]), int(indptr_mm[stop])
                if codes_mm is not None and hi > lo:
                    pieces.append(np.asarray(codes_mm[lo:hi]))
                sizes.append(np.asarray(indptr_mm[start + 1:stop + 1])
                             - np.asarray(indptr_mm[start:stop]))
            codes = np.concatenate(pieces) if pieces else empty
            codes.flags.writeable = False
            all_sizes = np.concatenate(sizes) if sizes else empty
            indptr = np.zeros(len(ids) + 1, dtype=np.int64)
            np.cumsum(all_sizes, out=indptr[1:])
        csr = _measures.SetProfileCSR(indptr, codes, num_items, item_ids=item_ids)
        return ProfileSlice("sparse", None,
                            user_ids=np.asarray(ids, dtype=np.int64), csr=csr)

    def _load_sparse_v1(self, ids: List[int]) -> ProfileSlice:
        """Fallback loader for version-1 layouts (raw item ids on disk)."""
        indptr = np.fromfile(self._base_dir / self._SPARSE_INDPTR, dtype=np.int64)
        items_path = self._base_dir / self._SPARSE_ITEMS
        mm = np.memmap(items_path, dtype=np.int64, mode="r") if items_path.stat().st_size else None
        profiles: Dict[int, Set[int]] = {}
        for start, stop in _contiguous_ranges(ids):
            lo, hi = int(indptr[start]), int(indptr[stop])
            block = np.array(mm[lo:hi]) if (mm is not None and hi > lo) else np.empty(0, np.int64)
            for user in range(start, stop):
                ulo, uhi = int(indptr[user]) - lo, int(indptr[user + 1]) - lo
                profiles[user] = set(int(x) for x in block[ulo:uhi])
        if mm is not None:
            del mm
        return ProfileSlice("sparse", profiles)

    def load_all(self) -> ProfileStoreBase:
        """Load the entire store back into memory (tests and small runs)."""
        self._require_meta()
        if self._meta["kind"] == "dense":
            path = self._base_dir / self._DENSE_NAME
            matrix = np.fromfile(path, dtype=np.float64).reshape(self.num_users, self.dim)
            self.io_stats.record_read(matrix.nbytes,
                                      self._disk.read_cost(matrix.nbytes, sequential=True))
            return DenseProfileStore(matrix, copy=False)
        indptr = np.fromfile(self._base_dir / self._SPARSE_INDPTR, dtype=np.int64)
        items = np.fromfile(self._base_dir / self._SPARSE_ITEMS, dtype=np.int64)
        total = indptr.nbytes + items.nbytes
        if self.format_version >= 2:
            item_ids = np.fromfile(self._base_dir / self._SPARSE_ITEM_IDS, dtype=np.int64)
            total += item_ids.nbytes
            items = item_ids[items] if len(items) else items
        self.io_stats.record_read(total, self._disk.read_cost(total, sequential=True))
        profiles = [set(items[indptr[u]:indptr[u + 1]].tolist())
                    for u in range(self.num_users)]
        return SparseProfileStore(profiles)

    # -- updates (phase 5) -----------------------------------------------------

    def apply_changes(self, changes: Sequence[ProfileChange]) -> int:
        """Apply a batch of queued profile changes (the paper's lazy update).

        Returns the number of users whose profile actually changed.  Dense
        changes are in-place row writes through a writable memmap (the norm
        file is kept in sync); sparse changes rewrite the files because
        profile sizes shift — which also upgrades version-1 layouts.
        """
        self._require_meta()
        if not changes:
            return 0
        if self._meta["kind"] == "dense":
            return self._apply_dense(changes)
        return self._apply_sparse(changes)

    def _apply_dense(self, changes: Sequence[ProfileChange]) -> int:
        dim = self.dim
        path = self._base_dir / self._DENSE_NAME
        mm = np.memmap(path, dtype=np.float64, mode="r+", shape=(self.num_users, dim))
        norms_path = self._base_dir / self._NORMS_NAME
        norms_mm = (np.memmap(norms_path, dtype=np.float64, mode="r+",
                              shape=(self.num_users,))
                    if self.format_version >= 2 and norms_path.exists() else None)
        touched = set()
        for change in changes:
            if change.kind != "set":
                raise ValueError("dense profile stores only accept 'set' changes")
            vector = np.asarray(change.vector, dtype=np.float64)
            if vector.shape != (dim,):
                raise ValueError(f"change vector must have shape ({dim},), got {vector.shape}")
            mm[change.user] = vector
            num_bytes = vector.nbytes
            if norms_mm is not None:
                # np.sum reduces pairwise exactly like the axis-1 norm used
                # at write time, so stored and recomputed norms stay bitwise equal
                norms_mm[change.user] = np.sqrt(np.sum(vector * vector))
                num_bytes += 8
            touched.add(change.user)
            self.io_stats.record_write(num_bytes,
                                       self._disk.write_cost(num_bytes, sequential=False))
        mm.flush()
        del mm
        if norms_mm is not None:
            norms_mm.flush()
            del norms_mm
        return len(touched)

    def _apply_sparse(self, changes: Sequence[ProfileChange]) -> int:
        store = self.load_all()
        touched = set()
        for change in changes:
            if change.kind == "add":
                store.add_item(change.user, change.item)
            elif change.kind == "remove":
                store.remove_item(change.user, change.item)
            else:
                raise ValueError("sparse profile stores only accept 'add'/'remove' changes")
            touched.add(change.user)
        self._write_full(store)
        return len(touched)


def _contiguous_ranges(sorted_ids: Sequence[int]):
    """Yield (start, stop) half-open ranges covering runs of consecutive ids."""
    if not sorted_ids:
        return
    start = prev = sorted_ids[0]
    for value in sorted_ids[1:]:
        if value == prev + 1:
            prev = value
            continue
        yield (start, prev + 1)
        start = prev = value
    yield (start, prev + 1)
