"""Library-wide logging helpers.

The library never configures the root logger; it only attaches a
``NullHandler`` to its own namespace so that applications embedding the
library stay in control of log output (standard practice for libraries).
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger scoped under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Either a fully-qualified module name (``repro.storage.cache``) or a
        short suffix (``storage.cache``); both resolve to the same logger.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple console handler to the library logger.

    Intended for examples and benchmarks, not for library code.  Calling it
    twice is harmless: the handler is only added once.
    """
    logger = logging.getLogger(_ROOT_NAME)
    already = any(isinstance(h, logging.StreamHandler) and not isinstance(h, logging.NullHandler)
                  for h in logger.handlers)
    if not already:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
