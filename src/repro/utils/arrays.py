"""Shared array kernels used across the storage/similarity/tuple layers."""

from __future__ import annotations

import numpy as np

#: Digit width of the LSD counting-sort passes.
_RADIX_BITS = 16
_RADIX_MASK = np.int64((1 << _RADIX_BITS) - 1)


def counting_argsort(keys: np.ndarray, max_key: int) -> np.ndarray:
    """Stable argsort of non-negative int64 keys via LSD counting-sort passes.

    Each pass bucket-sorts one 16-bit digit (NumPy's stable argsort on
    ``uint16`` is a counting/radix sort), so the whole permutation costs
    O(passes · n) rather than a comparison sort's O(n log n) — and keys
    bounded by the vertex count need a single pass.  Stability of every
    pass makes the composition stable, so this is a drop-in replacement
    for ``np.argsort(keys, kind="stable")``.
    """
    order = np.argsort((keys & _RADIX_MASK).astype(np.uint16), kind="stable")
    shift = _RADIX_BITS
    while (int(max_key) >> shift) > 0:
        digits = ((keys[order] >> np.int64(shift)) & _RADIX_MASK).astype(np.uint16)
        order = order[np.argsort(digits, kind="stable")]
        shift += _RADIX_BITS
    return order


def ragged_run_offsets(lengths: np.ndarray) -> np.ndarray:
    """Within-run offsets of a ragged concatenation: ``[0..l0), [0..l1), …``.

    The building block of every "gather variable-length runs with one copy"
    pass in this codebase: combined with ``np.repeat(starts, lengths)`` it
    turns a list of ``(start, length)`` runs into flat source indices
    without a Python loop or per-run allocation.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    prefix = np.zeros(len(lengths), dtype=np.int64)
    np.cumsum(lengths[:-1], out=prefix[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(prefix, lengths)


def ragged_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``range(starts[i], starts[i] + lengths[i])`` runs."""
    lengths = np.asarray(lengths, dtype=np.int64)
    offsets = ragged_run_offsets(lengths)
    if not len(offsets):
        return offsets
    return np.repeat(np.asarray(starts, dtype=np.int64), lengths) + offsets
