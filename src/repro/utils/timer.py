"""Timing utilities used by the engine and by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Stopwatch:
    """A manual start/stop stopwatch accumulating elapsed seconds."""

    elapsed: float = 0.0
    _started_at: Optional[float] = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("Stopwatch is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the total elapsed time so far."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @contextmanager
    def measure(self) -> Iterator["Stopwatch"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    The engine uses one ``PhaseTimer`` per iteration so that benchmarks can
    report where time is spent across the paper's five phases.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            if name not in self.totals:
                self.order.append(name)
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self) -> float:
        """Total time across all recorded phases."""
        return sum(self.totals.values())

    def as_dict(self) -> Dict[str, float]:
        """Phase totals in first-seen order."""
        return {name: self.totals[name] for name in self.order}

    def merge(self, other: "PhaseTimer") -> None:
        """Accumulate another timer's totals into this one (in place)."""
        for name in other.order:
            if name not in self.totals:
                self.order.append(name)
                self.totals[name] = 0.0
                self.counts[name] = 0
            self.totals[name] += other.totals[name]
            self.counts[name] += other.counts[name]

    def format_table(self) -> str:
        """Human-readable per-phase breakdown used by examples and benches."""
        if not self.order:
            return "(no phases recorded)"
        width = max(len(name) for name in self.order)
        total = self.total()
        lines = []
        for name in self.order:
            t = self.totals[name]
            share = (t / total * 100.0) if total > 0 else 0.0
            lines.append(f"{name:<{width}}  {t:9.4f}s  {share:5.1f}%  (x{self.counts[name]})")
        lines.append(f"{'TOTAL':<{width}}  {total:9.4f}s")
        return "\n".join(lines)
