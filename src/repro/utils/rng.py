"""Deterministic random-number-generator helpers.

Every stochastic component in the library accepts either a seed or a
``numpy.random.Generator``.  These helpers normalise both forms and derive
independent child generators so that experiments are reproducible end to end
while individual components do not share (and therefore perturb) a global
random state.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (non-deterministic), an integer seed, a
    ``SeedSequence`` or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Independent streams are required when, e.g., the workload generator and
    the partitioner both need randomness but must not interfere with each
    other's sequences.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seeds from the parent generator.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(seed: Optional[int], salt: str) -> int:
    """Derive a stable integer seed from ``seed`` and a string ``salt``."""
    base = 0 if seed is None else int(seed)
    salt_hash = sum((i + 1) * ord(c) for i, c in enumerate(salt)) & 0x7FFFFFFF
    return (base * 1_000_003 + salt_hash) & 0x7FFFFFFF
