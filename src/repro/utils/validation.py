"""Small argument-validation helpers shared across the library.

Raising precise errors at API boundaries keeps the internal code free of
defensive checks and makes misuse obvious to downstream users.
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Any, Tuple, Type, Union


def check_positive(value: Union[int, float], name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a real number > 0."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(value: Union[int, float], name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a real number >= 0."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_positive_int(value: Any, name: str) -> None:
    """Raise unless ``value`` is an integer > 0."""
    if not isinstance(value, Integral) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_fraction(value: Union[int, float], name: str) -> None:
    """Raise unless ``value`` lies in the closed interval [0, 1]."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
