"""Shared utilities: logging, timing, validation and deterministic RNG helpers."""

from repro.utils.logging import get_logger
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timer import PhaseTimer, Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_type,
)

__all__ = [
    "get_logger",
    "make_rng",
    "spawn_rngs",
    "PhaseTimer",
    "Stopwatch",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_type",
]
