"""repro — out-of-core K-Nearest-Neighbours computation on a single PC.

A faithful, from-scratch reproduction of

    Nitin Chiluka, Anne-Marie Kermarrec, Javier Olivares.
    "Scaling KNN Computation over Large Graphs on a PC."
    Middleware 2014 (Demos & Posters).

The package provides the paper's five-phase out-of-core KNN engine
(:class:`~repro.core.engine.KNNEngine`) together with every substrate it
relies on: graph structures and generators, partitioners, the on-disk
partition/profile stores, the candidate-tuple hash table, the
partition-interaction graph with its traversal heuristics, similarity
measures, and the in-memory baselines (brute force, NN-Descent).
"""

from repro.core.config import EngineConfig
from repro.core.engine import EngineRunResult, KNNEngine
from repro.core.iteration import IterationResult
from repro.graph.knn_graph import KNNGraph
from repro.similarity.profiles import DenseProfileStore, SparseProfileStore
from repro.similarity.workloads import (
    generate_dense_profiles,
    generate_profile_churn,
    generate_sparse_profiles,
)

__version__ = "1.0.0"

__all__ = [
    "EngineConfig",
    "KNNEngine",
    "EngineRunResult",
    "IterationResult",
    "KNNGraph",
    "SparseProfileStore",
    "DenseProfileStore",
    "generate_sparse_profiles",
    "generate_dense_profiles",
    "generate_profile_churn",
    "__version__",
]
