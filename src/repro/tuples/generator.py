"""Candidate-tuple generation (the bridge scan of phases 1–2).

For every partition ``R_i`` the in-edge list ``{(s, v)}`` and the out-edge
list ``{(v, d)}`` are both sorted by the bridge vertex ``v`` (phase 1 does
the sorting).  A single merge scan over the two sorted lists then produces
every neighbours-of-neighbours pair ``(s, d)``: whenever both lists contain
a run for the same bridge ``v``, the cross product of the run's sources and
destinations gives the pairs bridged by ``v``.

The resulting pairs plus the direct edges of ``G(t)`` are inserted into the
dedup hash table ``H`` (:class:`~repro.tuples.hash_table.TupleHashTable`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graph.digraph import CSRDiGraph
from repro.partition.model import Partition
from repro.tuples.hash_table import TupleHashTable
from repro.utils.arrays import ragged_ranges

#: Row budget for batching bridge tuples into bulk hash-table inserts: large
#: enough that a whole iteration usually needs one dedup sweep, small enough
#: that the raw (duplicate-laden) pair buffer stays bounded (~16 MiB).
_BRIDGE_FLUSH_ROWS = 1 << 20


def _sorted_runs(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct values of a *sorted* array plus each run's start and length.

    The O(n) equivalent of ``np.unique(values, return_index=True,
    return_counts=True)`` for input that is already sorted (the bridge
    columns are — phase 1 sorts them).
    """
    starts = np.concatenate(
        [[0], np.flatnonzero(values[1:] != values[:-1]) + 1])
    counts = np.diff(np.concatenate([starts, [len(values)]]))
    return values[starts], starts, counts


def partition_bridge_tuples(partition: Partition,
                            max_pairs_per_bridge: Optional[int] = None) -> np.ndarray:
    """Neighbours-of-neighbours pairs bridged by the vertices of one partition.

    Returns an ``(n, 2)`` array of ``(s, d)`` pairs (self pairs included —
    the hash table filters them).  ``max_pairs_per_bridge`` optionally caps
    the cross product per bridge vertex, a standard guard against super-hub
    vertices blowing up the candidate set (documented deviation knob; the
    default of ``None`` reproduces the paper exactly).

    Both edge lists are sorted by bridge vertex, so the merge scan reduces
    to run bookkeeping: the matching bridge runs of the two lists are found
    with one ``np.intersect1d`` over the per-list unique bridges, and every
    run pair's cross product is emitted by a single batched repeat/gather
    pass — no per-bridge Python loop or per-bridge ``tile``/``column_stack``
    allocations.  Rows come out exactly as the per-bridge scan produced
    them: bridges ascending, then the run's sources in order, each paired
    with the run's destinations in order.
    """
    in_edges = partition.in_edges     # rows (s, v), sorted by v
    out_edges = partition.out_edges   # rows (v, d), sorted by v
    if len(in_edges) == 0 or len(out_edges) == 0:
        return np.empty((0, 2), dtype=np.int64)

    # both lists are already sorted by bridge, so the run boundaries fall
    # out of one neighbour comparison — no np.unique (which would re-sort)
    unique_in, in_start, in_count = _sorted_runs(in_edges[:, 1])
    unique_out, out_start, out_count = _sorted_runs(out_edges[:, 0])
    _, in_at, out_at = np.intersect1d(unique_in, unique_out,
                                      assume_unique=True, return_indices=True)
    if not len(in_at):
        return np.empty((0, 2), dtype=np.int64)
    src_start, src_len = in_start[in_at], in_count[in_at]
    dst_start, dst_len = out_start[out_at], out_count[out_at]
    if max_pairs_per_bridge is not None:
        # same per-bridge truncation as the scalar scan: bridges over budget
        # keep the first ~sqrt(budget) sources x budget/sqrt(budget) dests
        budget = max_pairs_per_bridge
        keep_s = max(1, int(np.sqrt(budget)))
        keep_d = max(1, budget // keep_s)
        over = src_len * dst_len > budget
        src_len = np.where(over, np.minimum(src_len, keep_s), src_len)
        dst_len = np.where(over, np.minimum(dst_len, keep_d), dst_len)
    # one row block per kept source: its in-edge row index, repeated over
    # its bridge's kept destination run
    source_rows = ragged_ranges(src_start, src_len)
    dests_per_row = np.repeat(dst_len, src_len)
    grid_s = np.repeat(in_edges[source_rows, 0], dests_per_row)
    dest_rows = ragged_ranges(np.repeat(dst_start, src_len), dests_per_row)
    return np.column_stack([grid_s, out_edges[dest_rows, 1]])


def generate_candidate_tuples(graph: CSRDiGraph,
                              partitions: Sequence[Partition],
                              assignment: np.ndarray,
                              include_direct_edges: bool = True,
                              max_pairs_per_bridge: Optional[int] = None) -> TupleHashTable:
    """Build and populate the hash table ``H`` for one KNN iteration.

    Parameters
    ----------
    graph:
        The current KNN graph ``G(t)`` (used for the direct edges).
    partitions:
        Phase-1 partitions with their sorted in-/out-edge lists.
    assignment:
        ``assignment[v]`` = partition id of vertex ``v`` (buckets the tuples
        by partition pair for the PI graph).
    include_direct_edges:
        The paper populates ``H`` with both neighbours-of-neighbours tuples
        and the direct edges of ``G(t)``; set ``False`` to study the
        contribution of the bridge tuples alone.
    max_pairs_per_bridge:
        Optional cap on the per-bridge cross product (see
        :func:`partition_bridge_tuples`).
    """
    table = TupleHashTable(graph.num_vertices, assignment)
    # batch the partitions' bridge pairs (plus the direct edges) into as few
    # bulk inserts as a bounded row buffer allows: normally one dedup sweep
    # per iteration, without the raw duplicate-laden pairs of every partition
    # resident at once
    chunks: list = []
    pending = 0

    def flush() -> None:
        nonlocal pending
        if chunks:
            table.add_array(chunks[0] if len(chunks) == 1 else np.concatenate(chunks))
            chunks.clear()
            pending = 0

    for partition in partitions:
        pairs = partition_bridge_tuples(partition, max_pairs_per_bridge=max_pairs_per_bridge)
        if len(pairs):
            chunks.append(pairs)
            pending += len(pairs)
            if pending >= _BRIDGE_FLUSH_ROWS:
                flush()
    flush()
    if include_direct_edges and graph.num_edges:
        # inserted separately so the flush buffer never holds the direct
        # edges on top of pending bridge pairs
        table.add_array(graph.edges_array())
    return table


def brute_force_two_hop_pairs(graph: CSRDiGraph) -> np.ndarray:
    """Reference (slow) two-hop pair enumeration used to validate the merge scan.

    For every vertex ``v``, every in-neighbour ``s`` and out-neighbour ``d``
    of ``v`` produce the pair ``(s, d)``.  Returns unique non-self pairs.
    """
    pairs = set()
    for bridge in range(graph.num_vertices):
        sources = graph.in_neighbors(bridge)
        destinations = graph.out_neighbors(bridge)
        for s in sources:
            for d in destinations:
                if s != d:
                    pairs.add((int(s), int(d)))
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(sorted(pairs), dtype=np.int64)
