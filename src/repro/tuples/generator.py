"""Candidate-tuple generation (the bridge scan of phases 1–2).

For every partition ``R_i`` the in-edge list ``{(s, v)}`` and the out-edge
list ``{(v, d)}`` are both sorted by the bridge vertex ``v`` (phase 1 does
the sorting).  A single merge scan over the two sorted lists then produces
every neighbours-of-neighbours pair ``(s, d)``: whenever both lists contain
a run for the same bridge ``v``, the cross product of the run's sources and
destinations gives the pairs bridged by ``v``.

The resulting pairs plus the direct edges of ``G(t)`` are inserted into the
dedup hash table ``H`` (:class:`~repro.tuples.hash_table.TupleHashTable`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.graph.digraph import CSRDiGraph
from repro.partition.model import Partition
from repro.tuples.hash_table import TupleHashTable

#: Row budget for batching bridge tuples into bulk hash-table inserts: large
#: enough that a whole iteration usually needs one dedup sweep, small enough
#: that the raw (duplicate-laden) pair buffer stays bounded (~16 MiB).
_BRIDGE_FLUSH_ROWS = 1 << 20


def partition_bridge_tuples(partition: Partition,
                            max_pairs_per_bridge: Optional[int] = None) -> np.ndarray:
    """Neighbours-of-neighbours pairs bridged by the vertices of one partition.

    Returns an ``(n, 2)`` array of ``(s, d)`` pairs (self pairs included —
    the hash table filters them).  ``max_pairs_per_bridge`` optionally caps
    the cross product per bridge vertex, a standard guard against super-hub
    vertices blowing up the candidate set (documented deviation knob; the
    default of ``None`` reproduces the paper exactly).
    """
    in_edges = partition.in_edges     # rows (s, v), sorted by v
    out_edges = partition.out_edges   # rows (v, d), sorted by v
    if len(in_edges) == 0 or len(out_edges) == 0:
        return np.empty((0, 2), dtype=np.int64)

    in_bridges = in_edges[:, 1]
    out_bridges = out_edges[:, 0]
    chunks = []
    i = j = 0
    n_in, n_out = len(in_edges), len(out_edges)
    while i < n_in and j < n_out:
        bridge_in = in_bridges[i]
        bridge_out = out_bridges[j]
        if bridge_in < bridge_out:
            i += 1
            continue
        if bridge_in > bridge_out:
            j += 1
            continue
        bridge = bridge_in
        i_end = i
        while i_end < n_in and in_bridges[i_end] == bridge:
            i_end += 1
        j_end = j
        while j_end < n_out and out_bridges[j_end] == bridge:
            j_end += 1
        sources = in_edges[i:i_end, 0]
        destinations = out_edges[j:j_end, 1]
        if max_pairs_per_bridge is not None:
            budget = max_pairs_per_bridge
            if len(sources) * len(destinations) > budget:
                keep_s = max(1, int(np.sqrt(budget)))
                keep_d = max(1, budget // keep_s)
                sources = sources[:keep_s]
                destinations = destinations[:keep_d]
        grid_s = np.repeat(sources, len(destinations))
        grid_d = np.tile(destinations, len(sources))
        chunks.append(np.column_stack([grid_s, grid_d]))
        i, j = i_end, j_end
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(chunks, axis=0)


def generate_candidate_tuples(graph: CSRDiGraph,
                              partitions: Sequence[Partition],
                              assignment: np.ndarray,
                              include_direct_edges: bool = True,
                              max_pairs_per_bridge: Optional[int] = None) -> TupleHashTable:
    """Build and populate the hash table ``H`` for one KNN iteration.

    Parameters
    ----------
    graph:
        The current KNN graph ``G(t)`` (used for the direct edges).
    partitions:
        Phase-1 partitions with their sorted in-/out-edge lists.
    assignment:
        ``assignment[v]`` = partition id of vertex ``v`` (buckets the tuples
        by partition pair for the PI graph).
    include_direct_edges:
        The paper populates ``H`` with both neighbours-of-neighbours tuples
        and the direct edges of ``G(t)``; set ``False`` to study the
        contribution of the bridge tuples alone.
    max_pairs_per_bridge:
        Optional cap on the per-bridge cross product (see
        :func:`partition_bridge_tuples`).
    """
    table = TupleHashTable(graph.num_vertices, assignment)
    # batch the partitions' bridge pairs (plus the direct edges) into as few
    # bulk inserts as a bounded row buffer allows: normally one dedup sweep
    # per iteration, without the raw duplicate-laden pairs of every partition
    # resident at once
    chunks: list = []
    pending = 0

    def flush() -> None:
        nonlocal pending
        if chunks:
            table.add_array(chunks[0] if len(chunks) == 1 else np.concatenate(chunks))
            chunks.clear()
            pending = 0

    for partition in partitions:
        pairs = partition_bridge_tuples(partition, max_pairs_per_bridge=max_pairs_per_bridge)
        if len(pairs):
            chunks.append(pairs)
            pending += len(pairs)
            if pending >= _BRIDGE_FLUSH_ROWS:
                flush()
    flush()
    if include_direct_edges and graph.num_edges:
        # inserted separately so the flush buffer never holds the direct
        # edges on top of pending bridge pairs
        table.add_array(graph.edges_array())
    return table


def brute_force_two_hop_pairs(graph: CSRDiGraph) -> np.ndarray:
    """Reference (slow) two-hop pair enumeration used to validate the merge scan.

    For every vertex ``v``, every in-neighbour ``s`` and out-neighbour ``d``
    of ``v`` produce the pair ``(s, d)``.  Returns unique non-self pairs.
    """
    pairs = set()
    for bridge in range(graph.num_vertices):
        sources = graph.in_neighbors(bridge)
        destinations = graph.out_neighbors(bridge)
        for s in sources:
            for d in destinations:
                if s != d:
                    pairs.add((int(s), int(d)))
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(sorted(pairs), dtype=np.int64)
