"""Phase 2 — candidate-tuple generation and the dedup hash table ``H``."""

from repro.tuples.hash_table import TupleHashTable
from repro.tuples.generator import (
    generate_candidate_tuples,
    partition_bridge_tuples,
)

__all__ = [
    "TupleHashTable",
    "generate_candidate_tuples",
    "partition_bridge_tuples",
]
