"""Edge-list file I/O.

Two formats are supported:

* a plain-text format compatible with the SNAP edge lists the paper uses
  (`# comment` lines, whitespace-separated ``src dst`` pairs), and
* a compact binary format (int64 pairs written with NumPy) used by the
  out-of-core layer where parsing text would dominate runtime.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.graph.digraph import CSRDiGraph, DiGraph

PathLike = Union[str, os.PathLike]

_BINARY_MAGIC = b"RPEL0001"


def write_edge_list(path: PathLike, graph: Union[DiGraph, CSRDiGraph],
                    header: Optional[str] = None) -> None:
    """Write ``graph`` as a SNAP-style text edge list."""
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        for src, dst in graph.edges():
            handle.write(f"{src}\t{dst}\n")


def read_edge_list(path: PathLike, num_vertices: Optional[int] = None) -> CSRDiGraph:
    """Read a SNAP-style text edge list into a :class:`CSRDiGraph`.

    Vertex ids need not be contiguous in the file: they are remapped to a
    dense ``0..n-1`` range preserving ascending order of the original ids,
    unless ``num_vertices`` is given, in which case ids are taken verbatim
    and must already be dense.
    """
    path = Path(path)
    sources, destinations = [], []
    with path.open("r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line in {path}: {line!r}")
            sources.append(int(parts[0]))
            destinations.append(int(parts[1]))
    if not sources:
        return CSRDiGraph.from_edges(num_vertices or 0, [])
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(destinations, dtype=np.int64)
    if num_vertices is None:
        ids = np.unique(np.concatenate([src, dst]))
        remap = {int(original): new for new, original in enumerate(ids)}
        src = np.asarray([remap[int(s)] for s in src], dtype=np.int64)
        dst = np.asarray([remap[int(d)] for d in dst], dtype=np.int64)
        num_vertices = len(ids)
    return CSRDiGraph.from_edges(num_vertices, np.column_stack([src, dst]))


def write_edge_list_binary(path: PathLike, graph: Union[DiGraph, CSRDiGraph]) -> None:
    """Write ``graph`` in the compact binary edge-list format."""
    path = Path(path)
    if isinstance(graph, CSRDiGraph):
        edges = graph.edges_array()
    else:
        edges = np.asarray(list(graph.edges()), dtype=np.int64).reshape(-1, 2)
    with path.open("wb") as handle:
        handle.write(_BINARY_MAGIC)
        header = np.asarray([graph.num_vertices, len(edges)], dtype=np.int64)
        handle.write(header.tobytes())
        handle.write(edges.astype(np.int64).tobytes())


def read_edge_list_binary(path: PathLike) -> CSRDiGraph:
    """Read a graph previously written by :func:`write_edge_list_binary`."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(_BINARY_MAGIC))
        if magic != _BINARY_MAGIC:
            raise ValueError(f"{path} is not a repro binary edge list (bad magic)")
        header = np.frombuffer(handle.read(16), dtype=np.int64)
        num_vertices, num_edges = int(header[0]), int(header[1])
        payload = np.frombuffer(handle.read(num_edges * 16), dtype=np.int64)
        if payload.size != num_edges * 2:
            raise ValueError(f"{path} is truncated: expected {num_edges} edges")
        edges = payload.reshape(num_edges, 2)
    return CSRDiGraph.from_edges(num_vertices, edges)
