"""Synthetic directed-graph generators.

These generators provide the workloads for the reproduction: random initial
KNN graphs, classic random-graph families used for controlled scaling
experiments, and a fixed-size power-law generator used to build synthetic
stand-ins for the SNAP datasets of the paper's Table 1 (see
``repro.graph.datasets``).

All generators are deterministic for a given seed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.digraph import CSRDiGraph, DiGraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_non_negative, check_positive_int


def erdos_renyi_graph(num_vertices: int, edge_probability: Optional[float] = None,
                      num_edges: Optional[int] = None,
                      seed: SeedLike = None) -> CSRDiGraph:
    """Directed Erdős–Rényi graph ``G(n, p)`` or ``G(n, M)``.

    Exactly one of ``edge_probability`` and ``num_edges`` must be given.
    Self loops are never generated.
    """
    check_positive_int(num_vertices, "num_vertices")
    rng = make_rng(seed)
    if (edge_probability is None) == (num_edges is None):
        raise ValueError("specify exactly one of edge_probability and num_edges")
    if edge_probability is not None:
        check_fraction(edge_probability, "edge_probability")
        possible = num_vertices * (num_vertices - 1)
        target = rng.binomial(possible, edge_probability) if possible else 0
    else:
        check_non_negative(num_edges, "num_edges")
        possible = num_vertices * (num_vertices - 1)
        if num_edges > possible:
            raise ValueError(
                f"num_edges ({num_edges}) exceeds the {possible} possible directed edges"
            )
        target = int(num_edges)
    edges = _sample_unique_edges(num_vertices, target, rng)
    return CSRDiGraph.from_edges(num_vertices, edges)


def barabasi_albert_graph(num_vertices: int, edges_per_vertex: int,
                          seed: SeedLike = None) -> CSRDiGraph:
    """Directed Barabási–Albert preferential-attachment graph.

    Each new vertex attaches ``edges_per_vertex`` out-edges to existing
    vertices chosen with probability proportional to their current total
    degree, yielding a power-law in-degree distribution similar to the
    web-style graphs the paper targets.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_positive_int(edges_per_vertex, "edges_per_vertex")
    if num_vertices <= edges_per_vertex:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    rng = make_rng(seed)
    sources, destinations = [], []
    # repeated-targets list implements preferential attachment in O(E)
    repeated: list = list(range(edges_per_vertex))
    for new_vertex in range(edges_per_vertex, num_vertices):
        if new_vertex == edges_per_vertex:
            targets = list(range(edges_per_vertex))
        else:
            targets = set()
            while len(targets) < edges_per_vertex:
                targets.add(repeated[rng.integers(0, len(repeated))])
            targets = sorted(targets)
        for t in targets:
            sources.append(new_vertex)
            destinations.append(t)
            repeated.append(t)
            repeated.append(new_vertex)
    edges = np.column_stack([np.asarray(sources, dtype=np.int64),
                             np.asarray(destinations, dtype=np.int64)])
    return CSRDiGraph.from_edges(num_vertices, edges)


def watts_strogatz_graph(num_vertices: int, nearest_neighbors: int,
                         rewire_probability: float,
                         seed: SeedLike = None) -> CSRDiGraph:
    """Directed Watts–Strogatz small-world graph.

    Each vertex points to its ``nearest_neighbors`` clockwise ring
    neighbours; each edge is rewired to a uniform random destination with
    probability ``rewire_probability``.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_positive_int(nearest_neighbors, "nearest_neighbors")
    check_fraction(rewire_probability, "rewire_probability")
    if nearest_neighbors >= num_vertices:
        raise ValueError("nearest_neighbors must be smaller than num_vertices")
    rng = make_rng(seed)
    graph = DiGraph(num_vertices)
    for v in range(num_vertices):
        for offset in range(1, nearest_neighbors + 1):
            dst = (v + offset) % num_vertices
            if rng.random() < rewire_probability:
                dst = int(rng.integers(0, num_vertices))
                attempts = 0
                while (dst == v or graph.has_edge(v, dst)) and attempts < 32:
                    dst = int(rng.integers(0, num_vertices))
                    attempts += 1
                if dst == v or graph.has_edge(v, dst):
                    dst = (v + offset) % num_vertices
            if dst != v:
                graph.add_edge(v, dst)
    return graph.to_csr()


def configuration_model_graph(out_degrees: Sequence[int],
                              in_degrees: Optional[Sequence[int]] = None,
                              seed: SeedLike = None) -> CSRDiGraph:
    """Directed configuration-model graph with (approximately) given degrees.

    Out-stubs and in-stubs are matched uniformly at random; self loops and
    multi-edges produced by the matching are dropped, so realised degrees can
    be slightly below the requested ones (the standard simple-graph
    projection of the configuration model).
    """
    out_deg = np.asarray(out_degrees, dtype=np.int64)
    if in_degrees is None:
        in_deg = out_deg.copy()
    else:
        in_deg = np.asarray(in_degrees, dtype=np.int64)
    if len(out_deg) != len(in_deg):
        raise ValueError("out_degrees and in_degrees must have the same length")
    if (out_deg < 0).any() or (in_deg < 0).any():
        raise ValueError("degrees must be non-negative")
    total_out, total_in = int(out_deg.sum()), int(in_deg.sum())
    if total_out != total_in:
        # trim the heavier side so the stub counts match
        diff = abs(total_out - total_in)
        heavier = out_deg if total_out > total_in else in_deg
        order = np.argsort(heavier)[::-1]
        i = 0
        while diff > 0:
            v = order[i % len(order)]
            if heavier[v] > 0:
                heavier[v] -= 1
                diff -= 1
            i += 1
    rng = make_rng(seed)
    num_vertices = len(out_deg)
    out_stubs = np.repeat(np.arange(num_vertices, dtype=np.int64), out_deg)
    in_stubs = np.repeat(np.arange(num_vertices, dtype=np.int64), in_deg)
    rng.shuffle(in_stubs)
    edges = np.column_stack([out_stubs, in_stubs])
    edges = edges[edges[:, 0] != edges[:, 1]]
    return CSRDiGraph.from_edges(num_vertices, edges)


def powerlaw_cluster_graph(num_vertices: int, edges_per_vertex: int,
                           triangle_probability: float,
                           seed: SeedLike = None) -> CSRDiGraph:
    """Holme–Kim-style power-law graph with tunable clustering (directed).

    Like :func:`barabasi_albert_graph`, but after each preferential
    attachment step a triad-formation step adds an edge to a random neighbour
    of the previous target with probability ``triangle_probability``,
    producing the local clustering typical of collaboration networks
    (the Gen.Rel. / AstroPhysics datasets in the paper).
    """
    check_positive_int(num_vertices, "num_vertices")
    check_positive_int(edges_per_vertex, "edges_per_vertex")
    check_fraction(triangle_probability, "triangle_probability")
    if num_vertices <= edges_per_vertex:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    rng = make_rng(seed)
    graph = DiGraph(num_vertices)
    repeated: list = list(range(edges_per_vertex))
    for new_vertex in range(edges_per_vertex, num_vertices):
        added = 0
        previous_target: Optional[int] = None
        guard = 0
        while added < edges_per_vertex and guard < 50 * edges_per_vertex:
            guard += 1
            target: Optional[int] = None
            if (previous_target is not None and rng.random() < triangle_probability):
                neighbors = list(graph.out_neighbors(previous_target))
                if neighbors:
                    target = neighbors[int(rng.integers(0, len(neighbors)))]
            if target is None:
                target = repeated[int(rng.integers(0, len(repeated)))]
            if target == new_vertex or graph.has_edge(new_vertex, target):
                continue
            graph.add_edge(new_vertex, target)
            repeated.append(target)
            repeated.append(new_vertex)
            previous_target = target
            added += 1
    return graph.to_csr()


def random_knn_graph(num_vertices: int, k: int, seed: SeedLike = None) -> CSRDiGraph:
    """Directed graph where every vertex has exactly ``k`` random out-edges.

    This is the shape of an initial KNN graph ``G(0)`` before any similarity
    information has been used.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_positive_int(k, "k")
    if num_vertices <= k:
        raise ValueError("num_vertices must exceed k")
    rng = make_rng(seed)
    sources = np.repeat(np.arange(num_vertices, dtype=np.int64), k)
    destinations = np.empty(num_vertices * k, dtype=np.int64)
    for v in range(num_vertices):
        choice = rng.choice(num_vertices - 1, size=k, replace=False)
        destinations[v * k:(v + 1) * k] = np.where(choice >= v, choice + 1, choice)
    return CSRDiGraph.from_edges(num_vertices, np.column_stack([sources, destinations]))


def powerlaw_fixed_size_graph(num_vertices: int, num_edges: int,
                              exponent: float = 2.2,
                              seed: SeedLike = None) -> CSRDiGraph:
    """Directed power-law graph with an *exact* vertex and edge count.

    Used to synthesise stand-ins for the SNAP datasets in the paper's
    Table 1: vertex weights follow ``w_i ∝ rank_i^{-1/(exponent-1)}``
    (a Zipf-like distribution whose tail matches a degree exponent of
    ``exponent``); sources and destinations are drawn independently from the
    weight distribution, and sampling continues until exactly ``num_edges``
    distinct non-loop edges have been collected.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_non_negative(num_edges, "num_edges")
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    possible = num_vertices * (num_vertices - 1)
    if num_edges > possible:
        raise ValueError(f"num_edges ({num_edges}) exceeds the {possible} possible edges")
    rng = make_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    # shuffle so that high-weight vertices are not clustered at low ids,
    # which would bias the contiguous partitioner used downstream
    rng.shuffle(weights)
    probabilities = weights / weights.sum()

    seen = set()
    edges = np.empty((num_edges, 2), dtype=np.int64)
    filled = 0
    while filled < num_edges:
        batch = max(4096, int((num_edges - filled) * 1.5))
        src = rng.choice(num_vertices, size=batch, p=probabilities)
        dst = rng.choice(num_vertices, size=batch, p=probabilities)
        for s, d in zip(src, dst):
            if s == d:
                continue
            key = (int(s), int(d))
            if key in seen:
                continue
            seen.add(key)
            edges[filled, 0] = s
            edges[filled, 1] = d
            filled += 1
            if filled == num_edges:
                break
    return CSRDiGraph.from_edges(num_vertices, edges)


def _sample_unique_edges(num_vertices: int, target: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Sample exactly ``target`` distinct uniform non-loop directed edges."""
    if target == 0:
        return np.empty((0, 2), dtype=np.int64)
    seen = set()
    edges = np.empty((target, 2), dtype=np.int64)
    filled = 0
    while filled < target:
        batch = max(4096, (target - filled) * 2)
        src = rng.integers(0, num_vertices, size=batch)
        dst = rng.integers(0, num_vertices, size=batch)
        for s, d in zip(src, dst):
            if s == d:
                continue
            key = (int(s), int(d))
            if key in seen:
                continue
            seen.add(key)
            edges[filled, 0] = s
            edges[filled, 1] = d
            filled += 1
            if filled == target:
                break
    return edges
