"""Structural graph metrics.

Used to characterise the synthetic dataset stand-ins (degree skew,
reciprocity, clustering) and to sanity-check that they fall in the same
structural family as the SNAP graphs the paper evaluates on — voting and
collaboration networks are highly skewed and clustered, P2P overlays are
flatter.  All metrics operate on :class:`~repro.graph.digraph.CSRDiGraph`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.graph.digraph import CSRDiGraph
from repro.utils.rng import SeedLike, make_rng


def degree_statistics(graph: CSRDiGraph) -> Dict[str, float]:
    """Mean / max / skew summary of in-, out- and total degrees."""
    out_deg = graph.out_degree_array()
    in_deg = graph.in_degree_array()
    total = out_deg + in_deg
    def stats(prefix: str, degrees: np.ndarray) -> Dict[str, float]:
        if len(degrees) == 0:
            return {f"{prefix}_mean": 0.0, f"{prefix}_max": 0.0, f"{prefix}_std": 0.0}
        return {
            f"{prefix}_mean": float(degrees.mean()),
            f"{prefix}_max": float(degrees.max()),
            f"{prefix}_std": float(degrees.std()),
        }
    result: Dict[str, float] = {}
    result.update(stats("out_degree", out_deg))
    result.update(stats("in_degree", in_deg))
    result.update(stats("total_degree", total))
    result["num_isolated"] = float(int((total == 0).sum()))
    return result


def degree_gini(graph: CSRDiGraph, kind: str = "total") -> float:
    """Gini coefficient of the degree distribution (0 = uniform, →1 = hub-dominated)."""
    if kind == "in":
        degrees = graph.in_degree_array()
    elif kind == "out":
        degrees = graph.out_degree_array()
    elif kind == "total":
        degrees = graph.degree_array()
    else:
        raise ValueError(f"kind must be 'in', 'out' or 'total', got {kind!r}")
    degrees = np.sort(degrees.astype(np.float64))
    n = len(degrees)
    total = degrees.sum()
    if n == 0 or total == 0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * degrees).sum()) / (n * total) - (n + 1.0) / n)


def reciprocity(graph: CSRDiGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    edges = graph.edges_array()
    if len(edges) == 0:
        return 0.0
    reciprocal = sum(1 for src, dst in edges if graph.has_edge(int(dst), int(src)))
    return reciprocal / len(edges)


def self_loop_count(graph: CSRDiGraph) -> int:
    """Number of self loops (should be zero for every generator in this repo)."""
    edges = graph.edges_array()
    if len(edges) == 0:
        return 0
    return int((edges[:, 0] == edges[:, 1]).sum())


def local_clustering_coefficient(graph: CSRDiGraph, vertex: int) -> float:
    """Undirected local clustering coefficient of one vertex."""
    neighbors = np.union1d(graph.out_neighbors(vertex), graph.in_neighbors(vertex))
    neighbors = neighbors[neighbors != vertex]
    k = len(neighbors)
    if k < 2:
        return 0.0
    neighbor_set = set(int(v) for v in neighbors)
    links = 0
    for u in neighbors:
        targets = np.union1d(graph.out_neighbors(int(u)), graph.in_neighbors(int(u)))
        links += sum(1 for w in targets if int(w) in neighbor_set and int(w) != int(u))
    return links / (k * (k - 1))


def average_clustering_coefficient(graph: CSRDiGraph, sample_size: Optional[int] = None,
                                   seed: SeedLike = None) -> float:
    """Mean local clustering coefficient, optionally over a vertex sample.

    Exact computation is O(Σ deg²); for the larger synthetic datasets a
    uniform vertex sample (``sample_size``) gives an unbiased estimate.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    if sample_size is None or sample_size >= n:
        vertices = np.arange(n)
    else:
        vertices = make_rng(seed).choice(n, size=sample_size, replace=False)
    values = [local_clustering_coefficient(graph, int(v)) for v in vertices]
    return float(np.mean(values)) if values else 0.0


def structural_report(graph: CSRDiGraph, clustering_sample: int = 500,
                      seed: SeedLike = 0) -> Dict[str, float]:
    """One-call structural summary used by examples and dataset sanity checks."""
    report = {
        "num_vertices": float(graph.num_vertices),
        "num_edges": float(graph.num_edges),
        "reciprocity": reciprocity(graph),
        "degree_gini": degree_gini(graph),
        "self_loops": float(self_loop_count(graph)),
        "avg_clustering": average_clustering_coefficient(
            graph, sample_size=clustering_sample, seed=seed),
    }
    report.update(degree_statistics(graph))
    return report
