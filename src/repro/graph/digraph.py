"""In-memory directed-graph structures.

Two complementary representations are provided:

* :class:`DiGraph` — a mutable adjacency-set digraph used while a graph is
  being built or edited (the KNN graph changes every iteration).
* :class:`CSRDiGraph` — an immutable Compressed-Sparse-Row snapshot backed by
  NumPy arrays, used for fast vectorised scans (degree statistics, candidate
  generation, serialisation to partition files).

Vertices are dense integer ids ``0 .. num_vertices-1``; the out-of-core layer
relies on this to address partitions and profile rows by simple arithmetic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

import numpy as np

from repro.utils.validation import check_non_negative

Edge = Tuple[int, int]


class DiGraph:
    """A mutable directed graph over vertices ``0..n-1`` with set adjacency.

    Parallel edges are not representable (adjacency is a set) and self loops
    are allowed unless the caller filters them; the KNN semantics never
    produce self loops because a user is not its own neighbour.
    """

    def __init__(self, num_vertices: int = 0):
        check_non_negative(num_vertices, "num_vertices")
        self._succ: List[Set[int]] = [set() for _ in range(num_vertices)]
        self._pred: List[Set[int]] = [set() for _ in range(num_vertices)]
        self._num_edges = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[Edge]) -> "DiGraph":
        """Build a graph from an iterable of ``(src, dst)`` pairs."""
        graph = cls(num_vertices)
        for src, dst in edges:
            graph.add_edge(src, dst)
        return graph

    def copy(self) -> "DiGraph":
        clone = DiGraph(self.num_vertices)
        for src in range(self.num_vertices):
            for dst in self._succ[src]:
                clone.add_edge(src, dst)
        return clone

    def add_vertex(self) -> int:
        """Append a new isolated vertex and return its id."""
        self._succ.append(set())
        self._pred.append(set())
        return self.num_vertices - 1

    def add_edge(self, src: int, dst: int) -> bool:
        """Add the edge ``src -> dst``; return ``True`` if it was new."""
        self._check_vertex(src)
        self._check_vertex(dst)
        if dst in self._succ[src]:
            return False
        self._succ[src].add(dst)
        self._pred[dst].add(src)
        self._num_edges += 1
        return True

    def remove_edge(self, src: int, dst: int) -> bool:
        """Remove the edge ``src -> dst``; return ``True`` if it existed."""
        self._check_vertex(src)
        self._check_vertex(dst)
        if dst not in self._succ[src]:
            return False
        self._succ[src].discard(dst)
        self._pred[dst].discard(src)
        self._num_edges -= 1
        return True

    def set_out_neighbors(self, src: int, neighbors: Iterable[int]) -> None:
        """Replace all out-edges of ``src`` with edges to ``neighbors``.

        This is the primitive the KNN iteration needs: each user's out-edges
        are wholesale replaced by its new top-K neighbour set.
        """
        self._check_vertex(src)
        new_set = set()
        for dst in neighbors:
            self._check_vertex(dst)
            if dst == src:
                continue
            new_set.add(dst)
        old_set = self._succ[src]
        for dst in old_set - new_set:
            self._pred[dst].discard(src)
        for dst in new_set - old_set:
            self._pred[dst].add(src)
        self._num_edges += len(new_set) - len(old_set)
        self._succ[src] = new_set

    # -- queries ----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_edge(self, src: int, dst: int) -> bool:
        self._check_vertex(src)
        self._check_vertex(dst)
        return dst in self._succ[src]

    def out_neighbors(self, vertex: int) -> Set[int]:
        """The set of successors of ``vertex`` (a copy is not made)."""
        self._check_vertex(vertex)
        return self._succ[vertex]

    def in_neighbors(self, vertex: int) -> Set[int]:
        """The set of predecessors of ``vertex`` (a copy is not made)."""
        self._check_vertex(vertex)
        return self._pred[vertex]

    def out_degree(self, vertex: int) -> int:
        self._check_vertex(vertex)
        return len(self._succ[vertex])

    def in_degree(self, vertex: int) -> int:
        self._check_vertex(vertex)
        return len(self._pred[vertex])

    def degree(self, vertex: int) -> int:
        """Total degree (in + out) of ``vertex``."""
        return self.in_degree(vertex) + self.out_degree(vertex)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in vertex order (src ascending, dst ascending)."""
        for src in range(self.num_vertices):
            for dst in sorted(self._succ[src]):
                yield (src, dst)

    def vertices(self) -> range:
        return range(self.num_vertices)

    def out_degree_array(self) -> np.ndarray:
        return np.fromiter((len(s) for s in self._succ), dtype=np.int64,
                           count=self.num_vertices)

    def in_degree_array(self) -> np.ndarray:
        return np.fromiter((len(p) for p in self._pred), dtype=np.int64,
                           count=self.num_vertices)

    def to_csr(self) -> "CSRDiGraph":
        """Snapshot the current graph into an immutable CSR representation."""
        return CSRDiGraph.from_digraph(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self.num_vertices == other.num_vertices and self._succ == other._succ

    def __repr__(self) -> str:
        return f"DiGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(
                f"vertex {vertex} out of range for graph with {self.num_vertices} vertices"
            )


class CSRDiGraph:
    """An immutable CSR snapshot of a directed graph.

    Both the out-adjacency (``indptr``/``indices``) and the in-adjacency
    (``rindptr``/``rindices``) are stored so the partitioner and the tuple
    generator can scan in-edges and out-edges sequentially, as the paper's
    phase 1 requires.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 rindptr: np.ndarray, rindices: np.ndarray):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.rindptr = np.asarray(rindptr, dtype=np.int64)
        self.rindices = np.asarray(rindices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.rindptr.ndim != 1:
            raise ValueError("indptr arrays must be one-dimensional")
        if len(self.indptr) != len(self.rindptr):
            raise ValueError("forward and reverse indptr must describe the same vertex count")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        if self.rindptr[-1] != len(self.rindices):
            raise ValueError("rindptr[-1] must equal len(rindices)")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "CSRDiGraph":
        n = graph.num_vertices
        out_deg = graph.out_degree_array()
        in_deg = graph.in_degree_array()
        indptr = np.zeros(n + 1, dtype=np.int64)
        rindptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(out_deg, out=indptr[1:])
        np.cumsum(in_deg, out=rindptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        rindices = np.empty(int(rindptr[-1]), dtype=np.int64)
        for v in range(n):
            succ = sorted(graph.out_neighbors(v))
            indices[indptr[v]:indptr[v + 1]] = succ
            pred = sorted(graph.in_neighbors(v))
            rindices[rindptr[v]:rindptr[v + 1]] = pred
        return cls(indptr, indices, rindptr, rindices)

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Sequence[Edge]) -> "CSRDiGraph":
        """Build a CSR graph directly from an edge array, deduplicating edges."""
        check_non_negative(num_vertices, "num_vertices")
        if len(edges) == 0:
            empty = np.zeros(num_vertices + 1, dtype=np.int64)
            return cls(empty, np.empty(0, dtype=np.int64), empty.copy(),
                       np.empty(0, dtype=np.int64))
        arr = np.asarray(edges, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be a sequence of (src, dst) pairs")
        if arr.min() < 0 or arr.max() >= num_vertices:
            raise ValueError("edge endpoints out of range")
        arr = np.unique(arr, axis=0)
        src, dst = arr[:, 0], arr[:, 1]
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        rorder = np.lexsort((src, dst))
        rsrc, rdst = src[rorder], dst[rorder]
        rindptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(rindptr, rdst + 1, 1)
        np.cumsum(rindptr, out=rindptr)
        return cls(indptr, dst.copy(), rindptr, rsrc.copy())

    # -- queries ----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return int(self.indptr[-1])

    def out_neighbors(self, vertex: int) -> np.ndarray:
        """Successors of ``vertex`` sorted ascending (a NumPy view)."""
        return self.indices[self.indptr[vertex]:self.indptr[vertex + 1]]

    def in_neighbors(self, vertex: int) -> np.ndarray:
        """Predecessors of ``vertex`` sorted ascending (a NumPy view)."""
        return self.rindices[self.rindptr[vertex]:self.rindptr[vertex + 1]]

    def out_degree(self, vertex: int) -> int:
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def in_degree(self, vertex: int) -> int:
        return int(self.rindptr[vertex + 1] - self.rindptr[vertex])

    def out_degree_array(self) -> np.ndarray:
        return np.diff(self.indptr)

    def in_degree_array(self) -> np.ndarray:
        return np.diff(self.rindptr)

    def degree_array(self) -> np.ndarray:
        return self.out_degree_array() + self.in_degree_array()

    def edges_array(self) -> np.ndarray:
        """All edges as an ``(num_edges, 2)`` array sorted by (src, dst)."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                        self.out_degree_array())
        return np.column_stack([src, self.indices])

    def edges(self) -> Iterator[Edge]:
        arr = self.edges_array()
        for src, dst in arr:
            yield (int(src), int(dst))

    def has_edge(self, src: int, dst: int) -> bool:
        row = self.out_neighbors(src)
        pos = np.searchsorted(row, dst)
        return pos < len(row) and row[pos] == dst

    def to_digraph(self) -> DiGraph:
        return DiGraph.from_edges(self.num_vertices, self.edges())

    def __repr__(self) -> str:
        return f"CSRDiGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"


def degree_histogram(graph: "CSRDiGraph", kind: str = "total") -> Dict[int, int]:
    """Return ``{degree: count}`` for ``kind`` in {'in', 'out', 'total'}."""
    if kind == "in":
        degrees = graph.in_degree_array()
    elif kind == "out":
        degrees = graph.out_degree_array()
    elif kind == "total":
        degrees = graph.degree_array()
    else:
        raise ValueError(f"kind must be 'in', 'out' or 'total', got {kind!r}")
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}
