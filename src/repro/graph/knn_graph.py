"""The KNN graph ``G(t)``: a directed graph with bounded out-degree K.

Each (user) vertex keeps at most K out-edges, each annotated with the
similarity score that placed that neighbour in the user's top-K.  The KNN
iteration replaces a vertex's neighbour list wholesale when better
candidates are found, which is exactly the operation GraphChi-style
frameworks do not support and the motivation for the paper's system.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.digraph import CSRDiGraph, DiGraph
from repro.utils.arrays import counting_argsort as _counting_argsort
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_non_negative, check_positive_int

ScoredEdge = Tuple[int, int, float]


def _descending_score_argsort(scores: np.ndarray) -> np.ndarray:
    """Stable argsort by *descending* score via order-isomorphic integer keys.

    The IEEE-754 bit pattern of a float64 is mapped monotonically onto a
    ``uint64`` (negatives flip every bit, non-negatives flip the sign bit),
    complemented for descending order, and argsorted with four stable 16-bit
    counting passes — replacing the merge's last global comparison sort
    (``np.argsort(-scores, kind="stable")``) with O(4·n) work.

    Tie semantics are pinned: ``-0.0`` is folded into ``+0.0`` before the
    bit view, so exactly equal scores (including the two zeros, which
    compare equal as floats but differ bitwise) share a key and stability
    preserves arrival order — bit-identical to the comparison sort.  Scores
    must be NaN-free (similarity measures never produce NaN; a comparison
    sort would sink NaNs to the end, this mapping would not).
    """
    bits = (scores + 0.0).view(np.uint64)
    sign = np.uint64(1) << np.uint64(63)
    ascending = np.where(bits & sign != 0, ~bits, bits | sign)
    keys = ~ascending
    order = np.argsort((keys & np.uint64(0xFFFF)).astype(np.uint16), kind="stable")
    for shift in (16, 32, 48):
        digits = ((keys[order] >> np.uint64(shift)) & np.uint64(0xFFFF)).astype(np.uint16)
        order = order[np.argsort(digits, kind="stable")]
    return order


def topk_candidate_rows(sources: np.ndarray, destinations: np.ndarray,
                        scores: np.ndarray, k: int) -> np.ndarray:
    """Row indices of each source's ``k`` best candidates, ascending.

    Ranks by the same ``(-score, destination)`` total order the batch merge
    uses, which is what makes this a *safe* per-shard pre-reduction: a row
    ranked at position ``k`` or beyond within its own subset is dominated by
    ``k`` better rows of that subset, so it can never enter its source's
    top-K of any union the subset joins.  Merging only the selected rows via
    :meth:`KNNGraph.add_candidates_batch` is therefore identical to merging
    the full subset — the property that lets shard workers return bounded
    deltas instead of every scored tuple.  Assumes destinations are unique
    per source within the subset (true for tuples drawn from the dedup hash
    table in one iteration), so the order is strict and the selection
    deterministic.
    """
    check_positive_int(k, "k")
    src = np.asarray(sources, dtype=np.int64).ravel()
    dst = np.asarray(destinations, dtype=np.int64).ravel()
    sc = np.asarray(scores, dtype=np.float64).ravel()
    if not (len(src) == len(dst) == len(sc)):
        raise ValueError("sources, destinations and scores must have equal length")
    if len(src) == 0:
        return np.empty(0, dtype=np.int64)
    # lexsort with the primary key last: source asc, then score desc
    # (realised through the order-isomorphic descending key map so ties —
    # including -0.0 vs +0.0 — resolve exactly as the merge resolves them),
    # then destination asc
    bits = (sc + 0.0).view(np.uint64)
    sign = np.uint64(1) << np.uint64(63)
    desc_key = ~np.where(bits & sign != 0, ~bits, bits | sign)
    order = np.lexsort((dst, desc_key, src))
    src_sorted = src[order]
    group_breaks = np.flatnonzero(src_sorted[1:] != src_sorted[:-1]) + 1
    group_starts = np.concatenate([[0], group_breaks])
    group_sizes = np.diff(np.concatenate([group_starts, [len(src_sorted)]]))
    rank = np.arange(len(src_sorted)) - np.repeat(group_starts, group_sizes)
    return np.sort(order[rank < k])


class KNNGraph:
    """Directed K-out-degree graph with per-edge similarity scores.

    The neighbour list of every vertex is maintained as a min-heap keyed on
    similarity so that the weakest current neighbour can be evicted in
    O(log K) when a better candidate arrives.
    """

    def __init__(self, num_vertices: int, k: int):
        check_non_negative(num_vertices, "num_vertices")
        check_positive_int(k, "k")
        self._k = k
        # heap entries are (score, neighbor); the dict mirrors the heap for O(1) lookup
        self._heaps: List[List[Tuple[float, int]]] = [[] for _ in range(num_vertices)]
        self._scores: List[Dict[int, float]] = [{} for _ in range(num_vertices)]

    # -- construction -----------------------------------------------------

    @classmethod
    def random(cls, num_vertices: int, k: int, seed: SeedLike = None) -> "KNNGraph":
        """Random initial KNN graph: each vertex points to K distinct random others.

        This mirrors the standard NN-Descent initialisation and the "initial"
        stage of the paper's input graph ``G(0)``.
        """
        check_positive_int(k, "k")
        if num_vertices <= k:
            raise ValueError(
                f"num_vertices ({num_vertices}) must exceed k ({k}) for a random KNN graph"
            )
        rng = make_rng(seed)
        graph = cls(num_vertices, k)
        destinations = np.empty((num_vertices, k), dtype=np.int64)
        for v in range(num_vertices):
            choices = rng.choice(num_vertices - 1, size=k, replace=False)
            # shift values >= v by one to exclude the self loop
            destinations[v] = np.where(choices >= v, choices + 1, choices)
        sources = np.repeat(np.arange(num_vertices, dtype=np.int64), k)
        graph.add_candidates_batch(sources, destinations.ravel(),
                                   np.zeros(num_vertices * k, dtype=np.float64),
                                   assume_unique=True)
        return graph

    @classmethod
    def from_neighbor_lists(cls, neighbor_lists: Sequence[Sequence[Tuple[int, float]]],
                            k: int) -> "KNNGraph":
        """Build from per-vertex ``[(neighbor, score), ...]`` lists."""
        graph = cls(len(neighbor_lists), k)
        for v, entries in enumerate(neighbor_lists):
            for neighbor, score in entries:
                graph.add_candidate(v, neighbor, score)
        return graph

    def copy(self) -> "KNNGraph":
        clone = KNNGraph(self.num_vertices, self._k)
        for v in range(self.num_vertices):
            clone._heaps[v] = list(self._heaps[v])
            clone._scores[v] = dict(self._scores[v])
        return clone

    # -- mutation ---------------------------------------------------------

    def add_candidate(self, vertex: int, neighbor: int, score: float) -> bool:
        """Offer ``neighbor`` with ``score`` as a KNN candidate of ``vertex``.

        Returns ``True`` if the neighbour list changed (the candidate was
        inserted or its score improved), ``False`` otherwise.  This is the
        single update primitive phase 4 uses when emitting ``G(t+1)``.
        """
        self._check_vertex(vertex)
        self._check_vertex(neighbor)
        if vertex == neighbor:
            return False
        scores = self._scores[vertex]
        heap = self._heaps[vertex]
        if neighbor in scores:
            if score <= scores[neighbor]:
                return False
            # lazy deletion: the old heap entry goes stale instead of paying
            # an O(K) rebuild; stale entries are skipped when the top is read
            scores[neighbor] = score
            heapq.heappush(heap, (score, neighbor))
            if len(heap) > 2 * self._k + 4:
                self._compact_heap(vertex)
            return True
        if len(scores) < self._k:
            scores[neighbor] = score
            heapq.heappush(heap, (score, neighbor))
            return True
        self._prune_stale_top(vertex)
        worst_score, worst_neighbor = heap[0]
        if score <= worst_score:
            return False
        heapq.heappop(heap)
        del scores[worst_neighbor]
        scores[neighbor] = score
        heapq.heappush(heap, (score, neighbor))
        return True

    def add_candidates_batch(self, sources: np.ndarray, destinations: np.ndarray,
                             scores: np.ndarray, assume_unique: bool = False) -> int:
        """Array-native bulk form of :meth:`add_candidate`.

        Offers ``destinations[i]`` with ``scores[i]`` as a candidate of
        ``sources[i]`` for all ``i`` in one pass: candidates are grouped by
        source, deduplicated (keeping the best score per edge) and merged
        with each source's existing neighbour list, then the top-K survivors
        are selected with a single lexsort instead of per-edge heap pushes.

        With distinct scores the result is identical to calling
        :meth:`add_candidate` once per row in order.  On *tied* scores the
        two paths may legitimately differ: the sequential heap evicts the
        tied-worst neighbour with the smallest id, which is path-dependent
        and not expressible as a top-K under any static order.  The batch
        path ranks by ``(-score, destination)`` instead, a strict total
        order per source (destinations are unique after dedup), so the
        merged neighbour lists are a pure function of the offered candidate
        *multiset*: re-splitting, re-sharding or reordering the same
        candidates — as dirty-first scheduling does to residency steps —
        cannot move the result.  Both are valid KNN graphs; only the
        arbitrary choice among equal-score neighbours can differ.  Returns
        the number of offered edges that *survive* in the updated neighbour
        lists (inserted, or improving an incumbent's score) — unlike summing
        :meth:`add_candidate`'s booleans, transient insertions evicted by a
        better candidate later in the same batch are not counted.

        ``assume_unique=True`` promises that no ``(source, destination)``
        pair is repeated within the batch (true for tuples drawn from the
        dedup hash table), which skips the per-edge dedup pass when the
        touched vertices have no incumbent neighbours.

        Scores must be NaN-free (every similarity measure in this package
        is): the priority ordering is realised through an integer score-key
        radix pass whose float→key map is only order-isomorphic on non-NaN
        values, so NaN batches are rejected rather than silently mis-ranked.
        """
        src = np.asarray(sources, dtype=np.int64).ravel()
        dst = np.asarray(destinations, dtype=np.int64).ravel()
        sc = np.asarray(scores, dtype=np.float64).ravel()
        if not (len(src) == len(dst) == len(sc)):
            raise ValueError("sources, destinations and scores must have equal length")
        if np.isnan(sc).any():
            raise ValueError("candidate scores must be NaN-free")
        if len(src) == 0:
            return 0
        lo = min(int(src.min()), int(dst.min()))
        hi = max(int(src.max()), int(dst.max()))
        if lo < 0 or hi >= self.num_vertices:
            raise IndexError(
                f"vertex {lo if lo < 0 else hi} out of range for graph with "
                f"{self.num_vertices} vertices"
            )
        keep = src != dst
        if not keep.all():
            src, dst, sc = src[keep], dst[keep], sc[keep]
        if len(src) == 0:
            return 0

        num_new = len(src)
        c_tie = None
        if self.num_edges:
            affected = np.sort(src)
            affected = affected[np.concatenate([[True], affected[1:] != affected[:-1]])]
            ex_src: List[int] = []
            ex_dst: List[int] = []
            ex_sc: List[float] = []
            for v in affected.tolist():
                current = self._scores[v]
                if current:
                    ex_src.extend([v] * len(current))
                    ex_dst.extend(current.keys())
                    ex_sc.extend(current.values())
            if ex_src:
                c_src = np.concatenate([np.asarray(ex_src, dtype=np.int64), src])
                c_dst = np.concatenate([np.asarray(ex_dst, dtype=np.int64), dst])
                c_sc = np.concatenate([np.asarray(ex_sc, dtype=np.float64), sc])
                # survivor marker: incumbents (0) vs new candidate rows
                # (1..n), consumed only by the `changed` count below — the
                # ranking itself never looks at arrival order
                c_tie = np.concatenate([np.zeros(len(ex_src), dtype=np.int64),
                                        np.arange(1, num_new + 1, dtype=np.int64)])
        if c_tie is None:
            c_src, c_dst, c_sc = src, dst, sc

        # order every entry by (-score, destination): a stable counting pass
        # on the destination composed with the stable score pass realises
        # the two-key ordering, making the ranking independent of arrival
        # order.  Equal (score, destination) entries can only be duplicates
        # of one edge; incumbents precede new rows there, so the dedup keeps
        # the incumbent and the `changed` count stays honest.
        by_dst = _counting_argsort(c_dst, self.num_vertices - 1)
        order = by_dst[_descending_score_argsort(c_sc[by_dst])]
        if not (c_tie is None and assume_unique):
            # keep only each edge's best entry: its first occurrence in the
            # score ordering.  A stable counting sort groups equal edge keys
            # with the best entry first; selecting the run heads through a
            # boolean mask preserves the score ordering without re-sorting
            # the kept positions (with no incumbents and unique pairs the
            # whole pass is skippable).
            if c_tie is None:
                c_tie = np.arange(1, num_new + 1, dtype=np.int64)
            edge_keys = (c_src * self.num_vertices + c_dst)[order]
            by_key = _counting_argsort(edge_keys,
                                       self.num_vertices * self.num_vertices)
            sorted_keys = edge_keys[by_key]
            run_head = np.empty(len(sorted_keys), dtype=bool)
            run_head[0] = True
            np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=run_head[1:])
            keep_best = np.zeros(len(sorted_keys), dtype=bool)
            keep_best[by_key[run_head]] = True
            order = order[keep_best]

        # per-source counting-sort bucketisation: grouping the score-ordered
        # rows by source is a bounded-key sort, so a counting pass (two for
        # graphs past 64Ki vertices) replaces the global comparison sort;
        # composing the permutations first means one gather per payload array
        order = order[_counting_argsort(c_src[order], self.num_vertices - 1)]
        s_src, s_dst, s_sc = c_src[order], c_dst[order], c_sc[order]

        # rank < K within each contiguous source group selects the new lists
        group_breaks = np.flatnonzero(s_src[1:] != s_src[:-1]) + 1
        group_starts = np.concatenate([[0], group_breaks])
        group_sizes = np.diff(np.concatenate([group_starts, [len(s_src)]]))
        rank = np.arange(len(s_src)) - np.repeat(group_starts, group_sizes)
        keep = rank < self._k
        s_src, s_dst, s_sc = s_src[keep], s_dst[keep], s_sc[keep]
        changed = (len(s_src) if c_tie is None
                   else int(np.count_nonzero(c_tie[order][keep])))

        # group bounds of the kept rows give the touched vertices directly
        first_in_group = np.empty(len(s_src), dtype=bool)
        first_in_group[0] = True
        np.not_equal(s_src[1:], s_src[:-1], out=first_in_group[1:])
        starts = np.flatnonzero(first_in_group)
        stops = np.concatenate([starts[1:], [len(s_src)]])
        all_dst = s_dst.tolist()
        all_sc = s_sc.tolist()
        for v, start, stop in zip(s_src[starts].tolist(), starts.tolist(),
                                  stops.tolist()):
            neighbors = all_dst[start:stop]
            vertex_scores = all_sc[start:stop]
            self._scores[v] = dict(zip(neighbors, vertex_scores))
            heap = list(zip(vertex_scores, neighbors))
            heapq.heapify(heap)
            self._heaps[v] = heap
        return changed

    def add_candidates_sharded(self, sources: np.ndarray, destinations: np.ndarray,
                               scores: np.ndarray, num_shards: int = 1,
                               assume_unique: bool = False) -> int:
        """Apply :meth:`add_candidates_batch` shard by shard over the sources.

        Rows are split into ``num_shards`` groups by ``source % num_shards``
        (row order preserved within a group) and merged one group at a time.
        Because every step of the batch merge — incumbent gathering, dedup
        and top-K selection — is independent per source vertex, the result
        is *identical* to a single batch call over all rows, ties included;
        sharding only bounds the size of each sort.  This is the merge the
        process backend uses so one iteration's flush never materialises a
        single monolithic sort.
        """
        check_positive_int(num_shards, "num_shards")
        src = np.asarray(sources, dtype=np.int64).ravel()
        if num_shards == 1 or len(src) == 0:
            return self.add_candidates_batch(src, destinations, scores,
                                             assume_unique=assume_unique)
        dst = np.asarray(destinations, dtype=np.int64).ravel()
        sc = np.asarray(scores, dtype=np.float64).ravel()
        shard_of = src % num_shards
        changed = 0
        for shard in range(num_shards):
            mask = shard_of == shard
            if mask.any():
                changed += self.add_candidates_batch(src[mask], dst[mask], sc[mask],
                                                     assume_unique=assume_unique)
        return changed

    def set_neighbors(self, vertex: int, entries: Iterable[Tuple[int, float]]) -> None:
        """Replace the neighbour list of ``vertex`` with the top-K of ``entries``."""
        self._check_vertex(vertex)
        best: Dict[int, float] = {}
        for neighbor, score in entries:
            self._check_vertex(neighbor)
            if neighbor == vertex:
                continue
            if neighbor not in best or score > best[neighbor]:
                best[neighbor] = score
        top = heapq.nlargest(self._k, best.items(), key=lambda item: item[1])
        self._scores[vertex] = dict(top)
        self._heaps[vertex] = [(score, neighbor) for neighbor, score in top]
        heapq.heapify(self._heaps[vertex])

    def _compact_heap(self, vertex: int) -> None:
        """Drop all stale (lazily deleted) entries from a vertex's heap."""
        self._heaps[vertex] = [(score, neighbor)
                               for neighbor, score in self._scores[vertex].items()]
        heapq.heapify(self._heaps[vertex])

    def _prune_stale_top(self, vertex: int) -> None:
        """Pop stale entries until the heap top is the true worst neighbour."""
        heap = self._heaps[vertex]
        scores = self._scores[vertex]
        while heap and scores.get(heap[0][1]) != heap[0][0]:
            heapq.heappop(heap)

    # -- queries ----------------------------------------------------------

    @property
    def k(self) -> int:
        return self._k

    @property
    def num_vertices(self) -> int:
        return len(self._heaps)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._scores)

    def neighbors(self, vertex: int) -> List[int]:
        """Current KNN of ``vertex`` sorted by descending similarity."""
        self._check_vertex(vertex)
        items = sorted(self._scores[vertex].items(), key=lambda kv: (-kv[1], kv[0]))
        return [neighbor for neighbor, _ in items]

    def neighbor_scores(self, vertex: int) -> Dict[int, float]:
        """Mapping ``neighbor -> score`` for ``vertex`` (a copy)."""
        self._check_vertex(vertex)
        return dict(self._scores[vertex])

    def score(self, vertex: int, neighbor: int) -> Optional[float]:
        self._check_vertex(vertex)
        return self._scores[vertex].get(neighbor)

    def worst_score(self, vertex: int) -> float:
        """Score of the weakest current neighbour (``-inf`` when under-full)."""
        self._check_vertex(vertex)
        if len(self._scores[vertex]) < self._k:
            return float("-inf")
        self._prune_stale_top(vertex)
        return self._heaps[vertex][0][0]

    def edges(self) -> Iterator[ScoredEdge]:
        for v in range(self.num_vertices):
            for neighbor, score in sorted(self._scores[v].items()):
                yield (v, neighbor, score)

    def _edge_keys(self) -> np.ndarray:
        """All edges encoded as sorted unique int64 keys ``src * n + dst``."""
        n = self.num_vertices
        counts = np.fromiter((len(s) for s in self._scores), dtype=np.int64, count=n)
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        src = np.repeat(np.arange(n, dtype=np.int64), counts)
        dst = np.fromiter((nb for s in self._scores for nb in s),
                          dtype=np.int64, count=total)
        keys = src * n + dst
        keys.sort()
        return keys

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(E, 2)`` int64 array (scores dropped)."""
        keys = self._edge_keys()
        if len(keys) == 0:
            return np.empty((0, 2), dtype=np.int64)
        n = self.num_vertices
        return np.column_stack([keys // n, keys % n])

    def edge_fingerprint(self) -> str:
        """SHA-256 over the sorted ``(src, dst, round(score, 9))`` edge set.

        The regression currency of the perf suite and the backend-parity
        tests: two graphs with the same fingerprint hold the same neighbour
        lists with the same scores (to 1e-9).
        """
        edges = sorted((int(s), int(d), round(float(score), 9))
                       for s, d, score in self.edges())
        # the JSON layout matches the original perf-suite fingerprint so the
        # BENCH_perf.json trajectory stays comparable across PRs
        return hashlib.sha256(json.dumps(edges).encode()).hexdigest()

    def to_digraph(self) -> DiGraph:
        graph = DiGraph(self.num_vertices)
        for src, dst, _ in self.edges():
            graph.add_edge(src, dst)
        return graph

    def to_csr(self) -> CSRDiGraph:
        return CSRDiGraph.from_edges(self.num_vertices, self.edge_array())

    def average_score(self) -> float:
        """Mean similarity over all current KNN edges (0.0 for an empty graph)."""
        total, count = 0.0, 0
        for scores in self._scores:
            total += sum(scores.values())
            count += len(scores)
        return total / count if count else 0.0

    def edge_difference(self, other: "KNNGraph") -> int:
        """Number of directed edges present in exactly one of the two graphs.

        Used as the convergence signal: when successive iterations change few
        edges, the KNN graph has stabilised.
        """
        if other.num_vertices != self.num_vertices:
            raise ValueError("graphs must have the same vertex count")
        mine = self._edge_keys()
        theirs = other._edge_keys()
        shared = len(np.intersect1d(mine, theirs, assume_unique=True))
        return len(mine) + len(theirs) - 2 * shared

    def recall_against(self, exact: "KNNGraph") -> float:
        """Fraction of the exact KNN edges that this graph also contains.

        The standard quality metric for approximate KNN-graph construction
        (recall@K against a brute-force ground truth).
        """
        if exact.num_vertices != self.num_vertices:
            raise ValueError("graphs must have the same vertex count")
        truth = exact._edge_keys()
        if len(truth) == 0:
            return 1.0
        mine = self._edge_keys()
        hits = len(np.intersect1d(mine, truth, assume_unique=True))
        return hits / len(truth)

    def __repr__(self) -> str:
        return (f"KNNGraph(num_vertices={self.num_vertices}, k={self._k}, "
                f"num_edges={self.num_edges})")

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(
                f"vertex {vertex} out of range for graph with {self.num_vertices} vertices"
            )
