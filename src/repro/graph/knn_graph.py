"""The KNN graph ``G(t)``: a directed graph with bounded out-degree K.

Each (user) vertex keeps at most K out-edges, each annotated with the
similarity score that placed that neighbour in the user's top-K.  The KNN
iteration replaces a vertex's neighbour list wholesale when better
candidates are found, which is exactly the operation GraphChi-style
frameworks do not support and the motivation for the paper's system.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.digraph import CSRDiGraph, DiGraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_non_negative, check_positive_int

ScoredEdge = Tuple[int, int, float]


class KNNGraph:
    """Directed K-out-degree graph with per-edge similarity scores.

    The neighbour list of every vertex is maintained as a min-heap keyed on
    similarity so that the weakest current neighbour can be evicted in
    O(log K) when a better candidate arrives.
    """

    def __init__(self, num_vertices: int, k: int):
        check_non_negative(num_vertices, "num_vertices")
        check_positive_int(k, "k")
        self._k = k
        # heap entries are (score, neighbor); the dict mirrors the heap for O(1) lookup
        self._heaps: List[List[Tuple[float, int]]] = [[] for _ in range(num_vertices)]
        self._scores: List[Dict[int, float]] = [{} for _ in range(num_vertices)]

    # -- construction -----------------------------------------------------

    @classmethod
    def random(cls, num_vertices: int, k: int, seed: SeedLike = None) -> "KNNGraph":
        """Random initial KNN graph: each vertex points to K distinct random others.

        This mirrors the standard NN-Descent initialisation and the "initial"
        stage of the paper's input graph ``G(0)``.
        """
        check_positive_int(k, "k")
        if num_vertices <= k:
            raise ValueError(
                f"num_vertices ({num_vertices}) must exceed k ({k}) for a random KNN graph"
            )
        rng = make_rng(seed)
        graph = cls(num_vertices, k)
        for v in range(num_vertices):
            choices = rng.choice(num_vertices - 1, size=k, replace=False)
            # shift values >= v by one to exclude the self loop
            neighbors = np.where(choices >= v, choices + 1, choices)
            for u in neighbors:
                graph.add_candidate(v, int(u), 0.0)
        return graph

    @classmethod
    def from_neighbor_lists(cls, neighbor_lists: Sequence[Sequence[Tuple[int, float]]],
                            k: int) -> "KNNGraph":
        """Build from per-vertex ``[(neighbor, score), ...]`` lists."""
        graph = cls(len(neighbor_lists), k)
        for v, entries in enumerate(neighbor_lists):
            for neighbor, score in entries:
                graph.add_candidate(v, neighbor, score)
        return graph

    def copy(self) -> "KNNGraph":
        clone = KNNGraph(self.num_vertices, self._k)
        for v in range(self.num_vertices):
            clone._heaps[v] = list(self._heaps[v])
            clone._scores[v] = dict(self._scores[v])
        return clone

    # -- mutation ---------------------------------------------------------

    def add_candidate(self, vertex: int, neighbor: int, score: float) -> bool:
        """Offer ``neighbor`` with ``score`` as a KNN candidate of ``vertex``.

        Returns ``True`` if the neighbour list changed (the candidate was
        inserted or its score improved), ``False`` otherwise.  This is the
        single update primitive phase 4 uses when emitting ``G(t+1)``.
        """
        self._check_vertex(vertex)
        self._check_vertex(neighbor)
        if vertex == neighbor:
            return False
        scores = self._scores[vertex]
        heap = self._heaps[vertex]
        if neighbor in scores:
            if score <= scores[neighbor]:
                return False
            scores[neighbor] = score
            self._rebuild_heap(vertex)
            return True
        if len(scores) < self._k:
            scores[neighbor] = score
            heapq.heappush(heap, (score, neighbor))
            return True
        worst_score, worst_neighbor = heap[0]
        if score <= worst_score:
            return False
        heapq.heappop(heap)
        del scores[worst_neighbor]
        scores[neighbor] = score
        heapq.heappush(heap, (score, neighbor))
        return True

    def set_neighbors(self, vertex: int, entries: Iterable[Tuple[int, float]]) -> None:
        """Replace the neighbour list of ``vertex`` with the top-K of ``entries``."""
        self._check_vertex(vertex)
        best: Dict[int, float] = {}
        for neighbor, score in entries:
            self._check_vertex(neighbor)
            if neighbor == vertex:
                continue
            if neighbor not in best or score > best[neighbor]:
                best[neighbor] = score
        top = heapq.nlargest(self._k, best.items(), key=lambda item: item[1])
        self._scores[vertex] = dict(top)
        self._heaps[vertex] = [(score, neighbor) for neighbor, score in top]
        heapq.heapify(self._heaps[vertex])

    def _rebuild_heap(self, vertex: int) -> None:
        self._heaps[vertex] = [(score, neighbor)
                               for neighbor, score in self._scores[vertex].items()]
        heapq.heapify(self._heaps[vertex])

    # -- queries ----------------------------------------------------------

    @property
    def k(self) -> int:
        return self._k

    @property
    def num_vertices(self) -> int:
        return len(self._heaps)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._scores)

    def neighbors(self, vertex: int) -> List[int]:
        """Current KNN of ``vertex`` sorted by descending similarity."""
        self._check_vertex(vertex)
        items = sorted(self._scores[vertex].items(), key=lambda kv: (-kv[1], kv[0]))
        return [neighbor for neighbor, _ in items]

    def neighbor_scores(self, vertex: int) -> Dict[int, float]:
        """Mapping ``neighbor -> score`` for ``vertex`` (a copy)."""
        self._check_vertex(vertex)
        return dict(self._scores[vertex])

    def score(self, vertex: int, neighbor: int) -> Optional[float]:
        self._check_vertex(vertex)
        return self._scores[vertex].get(neighbor)

    def worst_score(self, vertex: int) -> float:
        """Score of the weakest current neighbour (``-inf`` when under-full)."""
        self._check_vertex(vertex)
        if len(self._scores[vertex]) < self._k:
            return float("-inf")
        return self._heaps[vertex][0][0]

    def edges(self) -> Iterator[ScoredEdge]:
        for v in range(self.num_vertices):
            for neighbor, score in sorted(self._scores[v].items()):
                yield (v, neighbor, score)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(E, 2)`` int64 array (scores dropped)."""
        rows = [(v, neighbor) for v in range(self.num_vertices)
                for neighbor in sorted(self._scores[v])]
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)

    def to_digraph(self) -> DiGraph:
        graph = DiGraph(self.num_vertices)
        for src, dst, _ in self.edges():
            graph.add_edge(src, dst)
        return graph

    def to_csr(self) -> CSRDiGraph:
        return CSRDiGraph.from_edges(self.num_vertices, self.edge_array())

    def average_score(self) -> float:
        """Mean similarity over all current KNN edges (0.0 for an empty graph)."""
        total, count = 0.0, 0
        for scores in self._scores:
            total += sum(scores.values())
            count += len(scores)
        return total / count if count else 0.0

    def edge_difference(self, other: "KNNGraph") -> int:
        """Number of directed edges present in exactly one of the two graphs.

        Used as the convergence signal: when successive iterations change few
        edges, the KNN graph has stabilised.
        """
        if other.num_vertices != self.num_vertices:
            raise ValueError("graphs must have the same vertex count")
        diff = 0
        for v in range(self.num_vertices):
            mine = set(self._scores[v])
            theirs = set(other._scores[v])
            diff += len(mine ^ theirs)
        return diff

    def recall_against(self, exact: "KNNGraph") -> float:
        """Fraction of the exact KNN edges that this graph also contains.

        The standard quality metric for approximate KNN-graph construction
        (recall@K against a brute-force ground truth).
        """
        if exact.num_vertices != self.num_vertices:
            raise ValueError("graphs must have the same vertex count")
        hits, total = 0, 0
        for v in range(self.num_vertices):
            truth = set(exact._scores[v])
            if not truth:
                continue
            mine = set(self._scores[v])
            hits += len(truth & mine)
            total += len(truth)
        return hits / total if total else 1.0

    def __repr__(self) -> str:
        return (f"KNNGraph(num_vertices={self.num_vertices}, k={self._k}, "
                f"num_edges={self.num_edges})")

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(
                f"vertex {vertex} out of range for graph with {self.num_vertices} vertices"
            )
