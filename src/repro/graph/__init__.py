"""Directed-graph substrate: in-memory graphs, the KNN graph, file I/O and generators."""

from repro.graph.digraph import CSRDiGraph, DiGraph
from repro.graph.edge_list import (
    read_edge_list,
    read_edge_list_binary,
    write_edge_list,
    write_edge_list_binary,
)
from repro.graph.knn_graph import KNNGraph
from repro.graph.generators import (
    barabasi_albert_graph,
    configuration_model_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    random_knn_graph,
    watts_strogatz_graph,
)
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset

__all__ = [
    "DiGraph",
    "CSRDiGraph",
    "KNNGraph",
    "read_edge_list",
    "write_edge_list",
    "read_edge_list_binary",
    "write_edge_list_binary",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "configuration_model_graph",
    "powerlaw_cluster_graph",
    "random_knn_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
]
