"""Synthetic stand-ins for the SNAP datasets used in the paper's Table 1.

The paper evaluates its PI-graph traversal heuristics on six public SNAP
graphs.  Those files are not available offline, so this module generates
synthetic graphs matched to each dataset's published vertex count, edge
count, and broad structural family (voting / citation-style power law,
collaboration networks with clustering, e-mail communication, P2P overlay).
Because the experiment measures partition load/unload operation counts —
a function of graph size and degree structure, not of the identities of
individual SNAP users — the substitution preserves the quantity of interest
(documented in DESIGN.md, section 3).

The generated graphs are deterministic for a given seed, and the default
seed is fixed so that benchmark tables are stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.graph.digraph import CSRDiGraph
from repro.graph.generators import powerlaw_fixed_size_graph
from repro.utils.rng import SeedLike, derive_seed


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one paper dataset and how its stand-in is synthesised."""

    name: str
    display_name: str
    num_vertices: int
    num_edges: int
    family: str
    exponent: float
    description: str

    def generate(self, seed: SeedLike = None) -> CSRDiGraph:
        """Generate the synthetic stand-in graph for this dataset."""
        if seed is None:
            seed = derive_seed(20141208, self.name)
        return powerlaw_fixed_size_graph(
            self.num_vertices, self.num_edges, exponent=self.exponent, seed=seed
        )


#: The six datasets of Table 1 with the node/edge counts printed in the paper.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="wiki-vote",
            display_name="Wiki-Vote",
            num_vertices=7115,
            num_edges=100762,
            family="voting",
            exponent=2.0,
            description="Wikipedia adminship election network (who-votes-on-whom).",
        ),
        DatasetSpec(
            name="gen-rel",
            display_name="Gen. Rel.",
            num_vertices=5241,
            num_edges=14484,
            family="collaboration",
            exponent=2.6,
            description="arXiv General Relativity collaboration network (ca-GrQc).",
        ),
        DatasetSpec(
            name="high-energy",
            display_name="High Ener.",
            num_vertices=12006,
            num_edges=118489,
            family="collaboration",
            exponent=2.2,
            description="arXiv High Energy Physics collaboration network (ca-HepPh).",
        ),
        DatasetSpec(
            name="astro-phy",
            display_name="AstroPhy.",
            num_vertices=18771,
            num_edges=198050,
            family="collaboration",
            exponent=2.3,
            description="arXiv Astro Physics collaboration network (ca-AstroPh).",
        ),
        DatasetSpec(
            name="email",
            display_name="E-mail",
            num_vertices=36692,
            num_edges=183831,
            family="communication",
            exponent=1.9,
            description="Enron e-mail communication network (email-Enron).",
        ),
        DatasetSpec(
            name="gnutella",
            display_name="Gnutella",
            num_vertices=26518,
            num_edges=65369,
            family="p2p",
            exponent=3.0,
            description="Gnutella peer-to-peer overlay snapshot (p2p-Gnutella24).",
        ),
    ]
}

#: Order in which the paper's Table 1 lists the datasets.
TABLE1_ORDER = ["wiki-vote", "gen-rel", "high-energy", "astro-phy", "email", "gnutella"]


def load_dataset(name: str, seed: SeedLike = None) -> CSRDiGraph:
    """Generate the synthetic stand-in for dataset ``name``.

    ``name`` may be the registry key (``"wiki-vote"``) or the display name
    used in the paper's table (``"Wiki-Vote"``), case-insensitively.
    """
    key = name.strip().lower()
    if key in DATASETS:
        return DATASETS[key].generate(seed)
    for spec in DATASETS.values():
        if spec.display_name.lower() == key:
            return spec.generate(seed)
    known = ", ".join(sorted(DATASETS))
    raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")


def dataset_summary() -> str:
    """A small text table of the registered datasets (used by examples)."""
    lines = [f"{'dataset':<12} {'nodes':>8} {'edges':>9}  family"]
    for key in TABLE1_ORDER:
        spec = DATASETS[key]
        lines.append(
            f"{spec.display_name:<12} {spec.num_vertices:>8} {spec.num_edges:>9}  {spec.family}"
        )
    return "\n".join(lines)


def small_dataset(num_vertices: int = 500, num_edges: int = 3000,
                  seed: SeedLike = 7) -> CSRDiGraph:
    """A small power-law graph for tests and quick examples."""
    return powerlaw_fixed_size_graph(num_vertices, num_edges, exponent=2.2, seed=seed)
