"""Profile-workload generators.

The paper's system targets recommender-style workloads in which each user's
profile is a set of consumed items whose popularity is heavily skewed, and
profiles keep changing while the KNN computation runs (the motivation for
the lazy profile-update queue of phase 5).  This module generates such
workloads deterministically:

* :func:`generate_sparse_profiles` — Zipf-popular item sets per user;
* :func:`generate_dense_profiles` — latent-factor rating vectors with
  planted user communities (so KNN has structure to find);
* :func:`generate_profile_churn` — a stream of per-iteration profile
  changes that can be fed to the engine's update queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.similarity.profiles import DenseProfileStore, SparseProfileStore
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_non_negative, check_positive_int


@dataclass(frozen=True)
class ProfileChange:
    """A single profile mutation to apply at the end of an iteration.

    ``kind`` is ``"add"`` or ``"remove"`` for sparse profiles and ``"set"``
    for dense profiles (in which case ``vector`` carries the new profile).
    """

    user: int
    kind: str
    item: Optional[int] = None
    vector: Optional[np.ndarray] = None

    def __post_init__(self):
        if self.kind not in ("add", "remove", "set"):
            raise ValueError(f"kind must be 'add', 'remove' or 'set', got {self.kind!r}")
        if self.kind in ("add", "remove") and self.item is None:
            raise ValueError(f"{self.kind!r} change requires an item id")
        if self.kind == "set" and self.vector is None:
            raise ValueError("'set' change requires a vector")


def generate_sparse_profiles(num_users: int, num_items: int,
                             items_per_user: int = 20,
                             zipf_exponent: float = 1.1,
                             num_communities: int = 0,
                             seed: SeedLike = None) -> SparseProfileStore:
    """Sparse item-set profiles with Zipf-distributed item popularity.

    When ``num_communities`` > 0, users are assigned round-robin to
    communities and draw most of their items from a community-specific slice
    of the catalogue, giving the KNN graph real cluster structure.
    """
    check_positive_int(num_users, "num_users")
    check_positive_int(num_items, "num_items")
    check_positive_int(items_per_user, "items_per_user")
    check_non_negative(num_communities, "num_communities")
    if items_per_user > num_items:
        raise ValueError("items_per_user cannot exceed num_items")
    rng = make_rng(seed)
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** (-zipf_exponent)
    base_probabilities = weights / weights.sum()

    profiles: List[set] = []
    for user in range(num_users):
        if num_communities > 0:
            community = user % num_communities
            lo = (community * num_items) // num_communities
            hi = ((community + 1) * num_items) // num_communities
            probabilities = base_probabilities.copy()
            probabilities[lo:hi] *= 8.0
            probabilities /= probabilities.sum()
        else:
            probabilities = base_probabilities
        items = rng.choice(num_items, size=items_per_user, replace=False, p=probabilities)
        profiles.append(set(int(i) for i in items))
    return SparseProfileStore(profiles)


def generate_dense_profiles(num_users: int, dim: int = 16,
                            num_communities: int = 8,
                            noise: float = 0.25,
                            seed: SeedLike = None) -> DenseProfileStore:
    """Dense latent-factor profiles with planted communities.

    Each community has a random centre on the unit sphere; each user's
    profile is its community centre plus Gaussian noise.  Cosine similarity
    then recovers the communities, which gives KNN-quality benchmarks a
    meaningful ground truth.
    """
    check_positive_int(num_users, "num_users")
    check_positive_int(dim, "dim")
    check_positive_int(num_communities, "num_communities")
    check_non_negative(noise, "noise")
    rng = make_rng(seed)
    centres = rng.normal(size=(num_communities, dim))
    centres /= np.linalg.norm(centres, axis=1, keepdims=True)
    assignments = rng.integers(0, num_communities, size=num_users)
    matrix = centres[assignments] + rng.normal(scale=noise, size=(num_users, dim))
    return DenseProfileStore(matrix)


def generate_profile_churn(store, change_fraction: float = 0.05,
                           num_items: Optional[int] = None,
                           seed: SeedLike = None) -> List[ProfileChange]:
    """A batch of profile changes touching ``change_fraction`` of the users.

    For a :class:`SparseProfileStore`, each selected user gets one item added
    (uniform over the catalogue) and, with probability one half, one existing
    item removed.  For a :class:`DenseProfileStore`, the selected user's
    vector is re-drawn near its current value.
    """
    check_fraction(change_fraction, "change_fraction")
    if not isinstance(store, (SparseProfileStore, DenseProfileStore)):
        raise TypeError(f"unsupported profile store type: {type(store).__name__}")
    rng = make_rng(seed)
    num_users = store.num_users
    num_changed = int(round(num_users * change_fraction))
    if num_changed == 0:
        return []
    users = rng.choice(num_users, size=min(num_changed, num_users), replace=False)
    changes: List[ProfileChange] = []
    if isinstance(store, SparseProfileStore):
        if num_items is None:
            universe = store.item_universe()
            num_items = (max(universe) + 1) if universe else 1
        for user in users:
            user = int(user)
            changes.append(ProfileChange(user=user, kind="add",
                                         item=int(rng.integers(0, num_items))))
            profile = store.get(user)
            if profile and rng.random() < 0.5:
                victim = int(rng.choice(sorted(profile)))
                changes.append(ProfileChange(user=user, kind="remove", item=victim))
    elif isinstance(store, DenseProfileStore):
        for user in users:
            user = int(user)
            new_vector = store.get(user) + rng.normal(scale=0.1, size=store.dim)
            changes.append(ProfileChange(user=user, kind="set", vector=new_vector))
    else:
        raise TypeError(f"unsupported profile store type: {type(store).__name__}")
    return changes
