"""Similarity measures between user profiles.

Two profile encodings are supported throughout the library:

* *sparse* profiles — a set of item ids per user (e.g. pages voted on,
  papers co-authored), compared with set measures (Jaccard, overlap,
  common-item count);
* *dense* profiles — a fixed-dimension real vector per user (e.g. rating or
  embedding vectors), compared with vector measures (cosine, adjusted
  cosine, Pearson, Euclidean-derived similarity).

All measures return a similarity in which *larger means more similar*, so
the KNN top-K selection never needs to know which measure is in use.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Set, Union

import numpy as np

SparseProfile = Union[Set[int], FrozenSet[int]]
SimilarityFn = Callable


# -- set (sparse-profile) measures ----------------------------------------

def jaccard_similarity(a: Iterable[int], b: Iterable[int]) -> float:
    """|a ∩ b| / |a ∪ b|; 0.0 when both sets are empty."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 0.0
    union = len(sa | sb)
    return len(sa & sb) / union if union else 0.0


def overlap_coefficient(a: Iterable[int], b: Iterable[int]) -> float:
    """|a ∩ b| / min(|a|, |b|); 0.0 when either set is empty."""
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / min(len(sa), len(sb))


def common_items(a: Iterable[int], b: Iterable[int]) -> float:
    """Raw common-item count, the simplest recommender-style similarity."""
    return float(len(set(a) & set(b)))


def cosine_set_similarity(a: Iterable[int], b: Iterable[int]) -> float:
    """Set cosine: |a ∩ b| / sqrt(|a| * |b|)."""
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / float(np.sqrt(len(sa) * len(sb)))


# -- vector (dense-profile) measures ---------------------------------------

def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Standard cosine similarity; 0.0 if either vector is all-zero."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0.0:
        return 0.0
    return float(np.dot(a, b) / denom)


def adjusted_cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity after subtracting each vector's own mean."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return cosine_similarity(a - a.mean(), b - b.mean())


def pearson_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient mapped to 0.0 for degenerate vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    da, db = a - a.mean(), b - b.mean()
    denom = np.linalg.norm(da) * np.linalg.norm(db)
    if denom == 0.0:
        return 0.0
    return float(np.dot(da, db) / denom)


def euclidean_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Similarity derived from Euclidean distance: ``1 / (1 + d)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(1.0 / (1.0 + np.linalg.norm(a - b)))


# -- vectorised batch kernels ----------------------------------------------

def cosine_similarity_batch(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Row-wise cosine similarity between two equally-shaped matrices.

    ``left[i]`` is compared with ``right[i]``; rows with zero norm yield 0.0.
    This is the kernel the engine uses to score all tuples on a PI edge in
    one NumPy call.
    """
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ValueError(f"shape mismatch: {left.shape} vs {right.shape}")
    dots = np.einsum("ij,ij->i", left, right)
    norms = np.linalg.norm(left, axis=1) * np.linalg.norm(right, axis=1)
    out = np.zeros(len(left), dtype=np.float64)
    nonzero = norms > 0
    out[nonzero] = dots[nonzero] / norms[nonzero]
    return out


def euclidean_similarity_batch(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Row-wise ``1 / (1 + ||left_i - right_i||)``."""
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ValueError(f"shape mismatch: {left.shape} vs {right.shape}")
    return 1.0 / (1.0 + np.linalg.norm(left - right, axis=1))


#: Registry of named pairwise measures usable from the engine configuration.
MEASURES: Dict[str, SimilarityFn] = {
    "jaccard": jaccard_similarity,
    "overlap": overlap_coefficient,
    "common": common_items,
    "cosine_set": cosine_set_similarity,
    "cosine": cosine_similarity,
    "adjusted_cosine": adjusted_cosine_similarity,
    "pearson": pearson_similarity,
    "euclidean": euclidean_similarity,
}

#: Measures that operate on sparse (set) profiles.
SET_MEASURES = frozenset({"jaccard", "overlap", "common", "cosine_set"})

#: Measures that operate on dense (vector) profiles.
VECTOR_MEASURES = frozenset({"cosine", "adjusted_cosine", "pearson", "euclidean"})


def get_measure(name: str) -> SimilarityFn:
    """Look up a similarity measure by name (raises ``KeyError`` with hints)."""
    try:
        return MEASURES[name]
    except KeyError:
        known = ", ".join(sorted(MEASURES))
        raise KeyError(f"unknown similarity measure {name!r}; known measures: {known}") from None


def is_set_measure(name: str) -> bool:
    """True when ``name`` is a sparse-profile (set) measure."""
    if name not in MEASURES:
        get_measure(name)  # raise the standard error
    return name in SET_MEASURES
