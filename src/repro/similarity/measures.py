"""Similarity measures between user profiles.

Two profile encodings are supported throughout the library:

* *sparse* profiles — a set of item ids per user (e.g. pages voted on,
  papers co-authored), compared with set measures (Jaccard, overlap,
  common-item count);
* *dense* profiles — a fixed-dimension real vector per user (e.g. rating or
  embedding vectors), compared with vector measures (cosine, adjusted
  cosine, Pearson, Euclidean-derived similarity).

All measures return a similarity in which *larger means more similar*, so
the KNN top-K selection never needs to know which measure is in use.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Sequence, Set, Tuple, Union

import numpy as np

from repro.utils.arrays import ragged_ranges as _ragged_ranges

SparseProfile = Union[Set[int], FrozenSet[int]]
SimilarityFn = Callable


# -- set (sparse-profile) measures ----------------------------------------

def jaccard_similarity(a: Iterable[int], b: Iterable[int]) -> float:
    """|a ∩ b| / |a ∪ b|; 0.0 when both sets are empty."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 0.0
    union = len(sa | sb)
    return len(sa & sb) / union if union else 0.0


def overlap_coefficient(a: Iterable[int], b: Iterable[int]) -> float:
    """|a ∩ b| / min(|a|, |b|); 0.0 when either set is empty."""
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / min(len(sa), len(sb))


def common_items(a: Iterable[int], b: Iterable[int]) -> float:
    """Raw common-item count, the simplest recommender-style similarity."""
    return float(len(set(a) & set(b)))


def cosine_set_similarity(a: Iterable[int], b: Iterable[int]) -> float:
    """Set cosine: |a ∩ b| / sqrt(|a| * |b|)."""
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / float(np.sqrt(len(sa) * len(sb)))


# -- vector (dense-profile) measures ---------------------------------------

def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Standard cosine similarity; 0.0 if either vector is all-zero."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0.0:
        return 0.0
    return float(np.dot(a, b) / denom)


def adjusted_cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity after subtracting each vector's own mean."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return cosine_similarity(a - a.mean(), b - b.mean())


def pearson_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient mapped to 0.0 for degenerate vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    da, db = a - a.mean(), b - b.mean()
    denom = np.linalg.norm(da) * np.linalg.norm(db)
    if denom == 0.0:
        return 0.0
    return float(np.dot(da, db) / denom)


def euclidean_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Similarity derived from Euclidean distance: ``1 / (1 + d)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return float(1.0 / (1.0 + np.linalg.norm(a - b)))


# -- vectorised batch kernels ----------------------------------------------

def cosine_similarity_batch(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Row-wise cosine similarity between two equally-shaped matrices.

    ``left[i]`` is compared with ``right[i]``; rows with zero norm yield 0.0.
    This is the kernel the engine uses to score all tuples on a PI edge in
    one NumPy call.
    """
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ValueError(f"shape mismatch: {left.shape} vs {right.shape}")
    dots = np.einsum("ij,ij->i", left, right)
    norms = np.linalg.norm(left, axis=1) * np.linalg.norm(right, axis=1)
    out = np.zeros(len(left), dtype=np.float64)
    nonzero = norms > 0
    out[nonzero] = dots[nonzero] / norms[nonzero]
    return out


def euclidean_similarity_batch(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Row-wise ``1 / (1 + ||left_i - right_i||)``."""
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ValueError(f"shape mismatch: {left.shape} vs {right.shape}")
    return 1.0 / (1.0 + np.linalg.norm(left - right, axis=1))


def cosine_from_norms(left: np.ndarray, right: np.ndarray,
                      left_norms: np.ndarray, right_norms: np.ndarray) -> np.ndarray:
    """Row-wise cosine similarity with precomputed row norms.

    Callers that score many batches against the same profile matrix (e.g. a
    resident :class:`~repro.storage.profile_store.ProfileSlice`) compute each
    row's norm once and skip the per-batch norm reduction.
    """
    dots = np.einsum("ij,ij->i", left, right)
    norms = left_norms * right_norms
    out = np.zeros(len(left), dtype=np.float64)
    nonzero = norms > 0
    out[nonzero] = dots[nonzero] / norms[nonzero]
    return out


def adjusted_cosine_similarity_batch(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Row-wise adjusted cosine: each row is centred on its own mean first."""
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ValueError(f"shape mismatch: {left.shape} vs {right.shape}")
    return cosine_similarity_batch(left - left.mean(axis=1, keepdims=True),
                                   right - right.mean(axis=1, keepdims=True))


def pearson_similarity_batch(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Row-wise Pearson correlation (0.0 for degenerate rows)."""
    return adjusted_cosine_similarity_batch(left, right)


#: Batch kernel per dense (vector) measure; every name in VECTOR_MEASURES has one.
VECTOR_MEASURE_BATCH: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "cosine": cosine_similarity_batch,
    "euclidean": euclidean_similarity_batch,
    "adjusted_cosine": adjusted_cosine_similarity_batch,
    "pearson": pearson_similarity_batch,
}


def vector_measure_batch(measure: str, left: np.ndarray,
                         right: np.ndarray) -> np.ndarray:
    """Row-wise scores under a named vector measure.

    Built-in measures dispatch to their vectorised kernel; a custom measure
    registered in :data:`MEASURES` falls back to a per-pair loop so it still
    works (slowly) everywhere the engine scores batches.
    """
    kernel = VECTOR_MEASURE_BATCH.get(measure)
    if kernel is not None:
        return kernel(left, right)
    fn = get_measure(measure)
    return np.asarray([fn(l, r) for l, r in zip(left, right)], dtype=np.float64)


# -- vectorised set-measure kernels over a CSR incidence matrix -------------

def _jaccard_from_counts(common: np.ndarray, size_a: np.ndarray,
                         size_b: np.ndarray) -> np.ndarray:
    union = size_a + size_b - common
    return np.divide(common, union, out=np.zeros_like(common), where=union > 0)


def _overlap_from_counts(common: np.ndarray, size_a: np.ndarray,
                         size_b: np.ndarray) -> np.ndarray:
    smaller = np.minimum(size_a, size_b)
    return np.divide(common, smaller, out=np.zeros_like(common), where=smaller > 0)


def _common_from_counts(common: np.ndarray, size_a: np.ndarray,
                        size_b: np.ndarray) -> np.ndarray:
    return common


def _cosine_set_from_counts(common: np.ndarray, size_a: np.ndarray,
                            size_b: np.ndarray) -> np.ndarray:
    denom = np.sqrt(size_a * size_b)
    return np.divide(common, denom, out=np.zeros_like(common), where=denom > 0)


#: Batch kernel per set measure, applied to (common, |a|, |b|) count arrays.
SET_MEASURE_KERNELS: Dict[str, Callable[[np.ndarray, np.ndarray, np.ndarray],
                                        np.ndarray]] = {
    "jaccard": _jaccard_from_counts,
    "overlap": _overlap_from_counts,
    "common": _common_from_counts,
    "cosine_set": _cosine_set_from_counts,
}


class SetProfileCSR:
    """CSR user×item incidence matrix over a collection of item-set profiles.

    Item ids are recoded to dense ``0..num_items-1`` codes at build time so
    that per-pair intersection counting can tag each item with its pair index
    in a single int64 key without overflow.  All four set measures reduce to
    the triple ``(|a ∩ b|, |a|, |b|)``, which :meth:`pair_counts` computes for
    a whole batch of pairs with no per-pair Python.
    """

    def __init__(self, indptr: np.ndarray, codes: np.ndarray, num_items: int,
                 item_ids: "np.ndarray | None" = None, rows_sorted: bool = False):
        # np.asarray never copies matching dtypes, so read-only mmap-backed
        # arrays are served through the kernels as-is
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._codes = np.asarray(codes, dtype=np.int64)
        self._num_items = int(num_items)
        self._item_ids = (np.asarray(item_ids, dtype=np.int64)
                          if item_ids is not None else None)
        # promise that each row's codes are strictly ascending, which lets
        # pair_counts intersect with a binary search instead of np.isin's
        # internal sort (a stale promise would silently corrupt counts, so
        # it is only made by builders that sort, never inferred)
        self._rows_sorted = bool(rows_sorted)
        self._tagged_keys: "np.ndarray | None" = None

    @classmethod
    def from_sets(cls, profiles: Sequence[Iterable[int]]) -> "SetProfileCSR":
        """Build from one item set per row (row order is preserved)."""
        sizes = np.fromiter((len(p) for p in profiles), dtype=np.int64,
                            count=len(profiles))
        indptr = np.zeros(len(profiles) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        total = int(indptr[-1])
        # each row's items are emitted in ascending id order; codes are item
        # ranks, so the per-row code runs come out sorted as well
        flat = np.fromiter(
            (item for profile in profiles for item in sorted(profile)),
            dtype=np.int64, count=total)
        if total:
            uniques, codes = np.unique(flat, return_inverse=True)
            num_items = len(uniques)
        else:
            uniques = np.empty(0, dtype=np.int64)
            codes = np.empty(0, dtype=np.int64)
            num_items = 0
        return cls(indptr, codes, num_items, item_ids=uniques, rows_sorted=True)

    @property
    def num_rows(self) -> int:
        return len(self._indptr) - 1

    @property
    def num_items(self) -> int:
        return self._num_items

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def codes(self) -> np.ndarray:
        return self._codes

    @property
    def item_ids(self) -> "np.ndarray | None":
        """Code→item-id decode table (``None`` when rows hold raw codes)."""
        return self._item_ids

    @property
    def rows_sorted(self) -> bool:
        """Whether every row's codes are promised to be strictly ascending."""
        return self._rows_sorted

    def row_codes(self, row: int) -> np.ndarray:
        """Item codes of one row (a view into the codes array)."""
        return self._codes[self._indptr[row]:self._indptr[row + 1]]

    def row_items(self, row: int) -> np.ndarray:
        """Original item ids of one row (decoded when a table is attached)."""
        codes = self.row_codes(row)
        return self._item_ids[codes] if self._item_ids is not None else codes

    @classmethod
    def merged_subset(cls, a: "SetProfileCSR", b: "SetProfileCSR",
                      take: np.ndarray) -> "SetProfileCSR":
        """Rows ``take`` of the virtual row stack ``[a; b]``, in one gather.

        ``take`` indexes rows ``0..a.num_rows-1`` in ``a`` and
        ``a.num_rows..`` in ``b``.  The output codes array is allocated
        once and filled by one gather per source — no intermediate
        concatenation of the two CSRs — which is what makes merging two
        mmap-served partition slices a single-copy operation.
        """
        if a._num_items != b._num_items:
            raise ValueError("cannot merge CSRs with different item codings")
        take = np.asarray(take, dtype=np.int64)
        from_b = take >= a.num_rows
        rows_a = take[~from_b]
        rows_b = take[from_b] - a.num_rows
        sizes = np.empty(len(take), dtype=np.int64)
        src_start = np.empty(len(take), dtype=np.int64)
        sizes[~from_b] = a.row_sizes(rows_a)
        sizes[from_b] = b.row_sizes(rows_b)
        src_start[~from_b] = a._indptr[rows_a]
        src_start[from_b] = b._indptr[rows_b]
        indptr = np.zeros(len(take) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        total = int(indptr[-1])
        codes = np.empty(total, dtype=np.int64)
        if total:
            offsets = np.arange(total, dtype=np.int64) - np.repeat(indptr[:-1], sizes)
            src = np.repeat(src_start, sizes) + offsets
            item_from_b = np.repeat(from_b, sizes)
            codes[~item_from_b] = a._codes[src[~item_from_b]]
            codes[item_from_b] = b._codes[src[item_from_b]]
        item_ids = a._item_ids if a._item_ids is not None else b._item_ids
        # rows are copied verbatim, so the per-row code order survives the merge
        return cls(indptr, codes, a._num_items, item_ids=item_ids,
                   rows_sorted=a._rows_sorted and b._rows_sorted)

    def row_sizes(self, rows: np.ndarray) -> np.ndarray:
        return self._indptr[rows + 1] - self._indptr[rows]

    def _gather(self, rows: np.ndarray,
                sizes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated item codes of ``rows`` plus the pair index of each item."""
        source = _ragged_ranges(self._indptr[rows], sizes)
        if not len(source):
            return source, source
        pair_idx = np.repeat(np.arange(len(rows), dtype=np.int64), sizes)
        return self._codes[source], pair_idx

    def _row_tagged_keys(self) -> np.ndarray:
        """Every stored item as a sorted ``row * num_items + code`` key.

        Built once per CSR (lazily) and shared by all pair batches scored
        against it.  With sorted rows the keys ascend globally, so per-pair
        intersection reduces to binary searches against this array — which
        is the size of the *slice* (one entry per stored item), not of the
        expanded pair batch, and therefore cache-resident.
        """
        if self._tagged_keys is None:
            sizes = np.diff(self._indptr)
            rows = np.repeat(np.arange(self.num_rows, dtype=np.int64), sizes)
            self._tagged_keys = rows * self._num_items + self._codes
        return self._tagged_keys

    def pair_counts(self, left_rows: np.ndarray, right_rows: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(|a ∩ b|, |a|, |b|)`` float64 arrays for a batch of row pairs."""
        left_rows = np.asarray(left_rows, dtype=np.int64)
        right_rows = np.asarray(right_rows, dtype=np.int64)
        size_a = self.row_sizes(left_rows)
        size_b = self.row_sizes(right_rows)
        common = np.zeros(len(left_rows), dtype=np.float64)
        if self._num_items and self._rows_sorted:
            # tag each right-row item with the pair's LEFT row and test it
            # against the slice-wide (row, code) key array: only one side is
            # ever expanded to pair granularity, and the binary-search
            # haystack is the slice itself (small, hot in cache) instead of
            # the expanded batch
            items_b, pairs_b = self._gather(right_rows, size_b)
            if len(items_b):
                haystack = self._row_tagged_keys()
                needles = (np.repeat(left_rows, size_b) * self._num_items
                           + items_b)
                positions = np.searchsorted(haystack, needles)
                positions[positions == len(haystack)] = len(haystack) - 1
                matched = haystack[positions] == needles
                counts = np.bincount(pairs_b[matched], minlength=len(left_rows))
                common = counts.astype(np.float64)
        elif self._num_items:
            items_a, pairs_a = self._gather(left_rows, size_a)
            items_b, pairs_b = self._gather(right_rows, size_b)
            if len(items_a) and len(items_b):
                # tag every item with its pair index; identical keys on both
                # sides are exactly the per-pair intersections
                keys_a = pairs_a * self._num_items + items_a
                keys_b = pairs_b * self._num_items + items_b
                matched = np.isin(keys_a, keys_b, assume_unique=True)
                counts = np.bincount(pairs_a[matched], minlength=len(left_rows))
                common = counts.astype(np.float64)
        return common, size_a.astype(np.float64), size_b.astype(np.float64)

    def measure_pairs(self, measure: str, left_rows: np.ndarray,
                      right_rows: np.ndarray) -> np.ndarray:
        """Batch set-measure scores for row pairs (no per-pair Python)."""
        try:
            kernel = SET_MEASURE_KERNELS[measure]
        except KeyError:
            get_measure(measure)  # raise the standard unknown-measure error
            raise ValueError(f"measure {measure!r} is not a set measure")
        return kernel(*self.pair_counts(left_rows, right_rows))


#: Registry of named pairwise measures usable from the engine configuration.
MEASURES: Dict[str, SimilarityFn] = {
    "jaccard": jaccard_similarity,
    "overlap": overlap_coefficient,
    "common": common_items,
    "cosine_set": cosine_set_similarity,
    "cosine": cosine_similarity,
    "adjusted_cosine": adjusted_cosine_similarity,
    "pearson": pearson_similarity,
    "euclidean": euclidean_similarity,
}

#: Measures that operate on sparse (set) profiles.
SET_MEASURES = frozenset({"jaccard", "overlap", "common", "cosine_set"})

#: Measures that operate on dense (vector) profiles.
VECTOR_MEASURES = frozenset({"cosine", "adjusted_cosine", "pearson", "euclidean"})


def get_measure(name: str) -> SimilarityFn:
    """Look up a similarity measure by name (raises ``KeyError`` with hints)."""
    try:
        return MEASURES[name]
    except KeyError:
        known = ", ".join(sorted(MEASURES))
        raise KeyError(f"unknown similarity measure {name!r}; known measures: {known}") from None


def is_set_measure(name: str) -> bool:
    """True when ``name`` is a sparse-profile (set) measure."""
    if name not in MEASURES:
        get_measure(name)  # raise the standard error
    return name in SET_MEASURES
