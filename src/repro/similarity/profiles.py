"""In-memory user-profile stores.

A *profile store* maps dense user ids ``0..n-1`` to profiles and knows how
to score pairs of users.  Two concrete stores are provided:

* :class:`SparseProfileStore` — each profile is a set of item ids
  (pages voted on, papers co-authored, songs listened to, ...);
* :class:`DenseProfileStore` — each profile is a fixed-dimension float
  vector (ratings, embeddings).

The out-of-core layer (`repro.storage.profile_store`) persists these stores
per partition; the engine only ever sees the interface defined by
:class:`ProfileStoreBase`, so the two encodings are interchangeable.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.similarity import measures as _measures
from repro.utils.validation import check_non_negative, check_positive_int


class ProfileStoreBase(abc.ABC):
    """Common interface over sparse and dense profile stores."""

    @property
    @abc.abstractmethod
    def num_users(self) -> int:
        """Number of users the store holds profiles for."""

    @abc.abstractmethod
    def get(self, user: int):
        """Return the profile of ``user`` (set or vector depending on store)."""

    @abc.abstractmethod
    def set(self, user: int, profile) -> None:
        """Replace the profile of ``user``."""

    @abc.abstractmethod
    def similarity(self, user_a: int, user_b: int, measure: str) -> float:
        """Similarity between two users under the named measure."""

    @abc.abstractmethod
    def similarity_pairs(self, pairs: np.ndarray, measure: str) -> np.ndarray:
        """Vectorised similarity for an ``(n, 2)`` array of user-id pairs."""

    @abc.abstractmethod
    def subset(self, users: Sequence[int]) -> "ProfileStoreBase":
        """A new store containing only ``users`` (ids are preserved as keys)."""

    @abc.abstractmethod
    def copy(self) -> "ProfileStoreBase":
        """Deep copy of the store."""

    def default_measure(self) -> str:
        """The measure used when the engine configuration does not name one."""
        return "jaccard"

    def apply_profile_changes(self, changes: Sequence) -> int:
        """Apply a batch of :class:`~repro.similarity.workloads.ProfileChange`
        items in order; returns the number of distinct users touched.

        Concrete stores override this with a batch-aware implementation (a
        dense store coalesces superseded ``set`` changes, a sparse store
        defers its incidence-cache invalidation to the end of the batch).
        """
        raise NotImplementedError

    def _check_user(self, user: int) -> None:
        if not 0 <= user < self.num_users:
            raise IndexError(f"user {user} out of range (store has {self.num_users} users)")


class SparseProfileStore(ProfileStoreBase):
    """Profiles as sets of integer item ids."""

    def __init__(self, profiles: Sequence[Iterable[int]]):
        self._profiles: List[Set[int]] = [set(p) for p in profiles]
        self._csr: Optional[_measures.SetProfileCSR] = None

    def _incidence(self) -> _measures.SetProfileCSR:
        """CSR user×item incidence matrix, rebuilt lazily after mutations."""
        if self._csr is None:
            self._csr = _measures.SetProfileCSR.from_sets(self._profiles)
        return self._csr

    def incidence(self) -> _measures.SetProfileCSR:
        """The store's CSR incidence matrix (item ids recoded to dense codes).

        The on-disk layer persists exactly these arrays (indptr, codes and
        the code→item-id table), so sparse partition profiles live on disk
        in CSR row order and a partition slice is a pure slice of the
        mapped arrays.
        """
        return self._incidence()

    @classmethod
    def empty(cls, num_users: int) -> "SparseProfileStore":
        check_non_negative(num_users, "num_users")
        return cls([set() for _ in range(num_users)])

    @property
    def num_users(self) -> int:
        return len(self._profiles)

    def get(self, user: int) -> Set[int]:
        """The user's item set (a copy — mutate via :meth:`set`/:meth:`add_item`,
        which keep the cached incidence matrix consistent)."""
        self._check_user(user)
        return set(self._profiles[user])

    def set(self, user: int, profile: Iterable[int]) -> None:
        self._check_user(user)
        self._profiles[user] = set(profile)
        self._csr = None

    def add_item(self, user: int, item: int) -> None:
        """Add a single item to a user's profile (profile-churn primitive)."""
        self._check_user(user)
        self._profiles[user].add(item)
        self._csr = None

    def remove_item(self, user: int, item: int) -> None:
        """Remove a single item if present (no error when absent)."""
        self._check_user(user)
        self._profiles[user].discard(item)
        self._csr = None

    def apply_profile_changes(self, changes: Sequence) -> int:
        """Apply ``add``/``remove`` changes in order (one cache rebuild total).

        The whole batch is validated before anything mutates, so a bad
        change leaves the store (and its cached incidence matrix) untouched.
        """
        for change in changes:
            if change.kind not in ("add", "remove"):
                raise ValueError(
                    "sparse profile stores only accept 'add'/'remove' changes")
            self._check_user(change.user)
        touched = set()
        for change in changes:
            profile = self._profiles[change.user]
            if change.kind == "add":
                profile.add(change.item)
            else:
                profile.discard(change.item)
            touched.add(change.user)
        if touched:
            self._csr = None
        return len(touched)

    def similarity(self, user_a: int, user_b: int, measure: str = "jaccard") -> float:
        self._check_user(user_a)
        self._check_user(user_b)
        fn = _measures.get_measure(measure)
        if measure not in _measures.SET_MEASURES:
            raise ValueError(
                f"measure {measure!r} operates on vectors; use a DenseProfileStore"
            )
        return float(fn(self._profiles[user_a], self._profiles[user_b]))

    def similarity_pairs(self, pairs: np.ndarray, measure: str = "jaccard") -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must be an (n, 2) array")
        _measures.get_measure(measure)
        if measure not in _measures.SET_MEASURES:
            raise ValueError(
                f"measure {measure!r} operates on vectors; use a DenseProfileStore"
            )
        if len(pairs) == 0:
            return np.zeros(0, dtype=np.float64)
        if pairs.min() < 0 or pairs.max() >= self.num_users:
            raise IndexError(f"pair endpoints out of range (store has {self.num_users} users)")
        return self._incidence().measure_pairs(measure, pairs[:, 0], pairs[:, 1])

    def subset(self, users: Sequence[int]) -> "SparseProfileStore":
        store = SparseProfileStore.empty(self.num_users)
        for user in users:
            self._check_user(user)
            store._profiles[user] = set(self._profiles[user])
        return store

    def copy(self) -> "SparseProfileStore":
        return SparseProfileStore(self._profiles)

    def item_universe(self) -> Set[int]:
        """Union of all item ids appearing in any profile."""
        universe: Set[int] = set()
        for profile in self._profiles:
            universe |= profile
        return universe

    def average_profile_size(self) -> float:
        if not self._profiles:
            return 0.0
        return sum(len(p) for p in self._profiles) / len(self._profiles)

    def default_measure(self) -> str:
        return "jaccard"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseProfileStore):
            return NotImplemented
        return self._profiles == other._profiles

    def __repr__(self) -> str:
        return (f"SparseProfileStore(num_users={self.num_users}, "
                f"avg_items={self.average_profile_size():.1f})")


class DenseProfileStore(ProfileStoreBase):
    """Profiles as rows of a dense ``(num_users, dim)`` float64 matrix."""

    def __init__(self, matrix: np.ndarray, copy: bool = True):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("profile matrix must be two-dimensional")
        self._matrix = matrix.copy() if copy else matrix

    @classmethod
    def empty(cls, num_users: int, dim: int) -> "DenseProfileStore":
        check_non_negative(num_users, "num_users")
        check_positive_int(dim, "dim")
        return cls(np.zeros((num_users, dim), dtype=np.float64))

    @property
    def num_users(self) -> int:
        return self._matrix.shape[0]

    @property
    def dim(self) -> int:
        return self._matrix.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying matrix (a view; mutate via :meth:`set`)."""
        return self._matrix

    def get(self, user: int) -> np.ndarray:
        self._check_user(user)
        return self._matrix[user]

    def set(self, user: int, profile: np.ndarray) -> None:
        self._check_user(user)
        profile = np.asarray(profile, dtype=np.float64)
        if profile.shape != (self.dim,):
            raise ValueError(f"profile must have shape ({self.dim},), got {profile.shape}")
        self._matrix[user] = profile

    @staticmethod
    def coalesce_set_changes(changes: Sequence, dim: int) -> Dict[int, np.ndarray]:
        """Validate a batch of ``set`` changes and keep the last vector per user.

        Shared by the in-memory and on-disk dense update paths, so only the
        final vector of each touched user is ever written — the work scales
        with touched rows rather than queued changes.
        """
        latest: Dict[int, np.ndarray] = {}
        for change in changes:
            if change.kind != "set":
                raise ValueError("dense profile stores only accept 'set' changes")
            vector = np.asarray(change.vector, dtype=np.float64)
            if vector.shape != (dim,):
                raise ValueError(
                    f"change vector must have shape ({dim},), got {vector.shape}")
            latest[change.user] = vector
        return latest

    def apply_profile_changes(self, changes: Sequence) -> int:
        """Apply ``set`` changes, coalescing superseded rows (last write wins).

        All user ids are validated before the first write, keeping the batch
        all-or-nothing like the on-disk path.
        """
        latest = self.coalesce_set_changes(changes, self.dim)
        for user in latest:
            self._check_user(user)
        for user, vector in latest.items():
            self._matrix[user] = vector
        return len(latest)

    def similarity(self, user_a: int, user_b: int, measure: str = "cosine") -> float:
        self._check_user(user_a)
        self._check_user(user_b)
        fn = _measures.get_measure(measure)
        if measure in _measures.SET_MEASURES:
            raise ValueError(
                f"measure {measure!r} operates on item sets; use a SparseProfileStore"
            )
        return float(fn(self._matrix[user_a], self._matrix[user_b]))

    def similarity_pairs(self, pairs: np.ndarray, measure: str = "cosine") -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must be an (n, 2) array")
        if measure in _measures.SET_MEASURES:
            raise ValueError(
                f"measure {measure!r} operates on item sets; use a SparseProfileStore"
            )
        _measures.get_measure(measure)
        if len(pairs) == 0:
            return np.zeros(0, dtype=np.float64)
        left = self._matrix[pairs[:, 0]]
        right = self._matrix[pairs[:, 1]]
        return _measures.vector_measure_batch(measure, left, right)

    def subset(self, users: Sequence[int]) -> "DenseProfileStore":
        store = DenseProfileStore.empty(self.num_users, self.dim)
        for user in users:
            self._check_user(user)
            store._matrix[user] = self._matrix[user]
        return store

    def copy(self) -> "DenseProfileStore":
        return DenseProfileStore(self._matrix)

    def default_measure(self) -> str:
        return "cosine"

    def __repr__(self) -> str:
        return f"DenseProfileStore(num_users={self.num_users}, dim={self.dim})"
