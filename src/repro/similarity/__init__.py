"""User profiles, similarity measures, and profile-workload generators."""

from repro.similarity.measures import (
    MEASURES,
    adjusted_cosine_similarity,
    cosine_similarity,
    euclidean_similarity,
    get_measure,
    jaccard_similarity,
    overlap_coefficient,
    pearson_similarity,
)
from repro.similarity.profiles import (
    DenseProfileStore,
    ProfileStoreBase,
    SparseProfileStore,
)
from repro.similarity.workloads import (
    ProfileChange,
    generate_dense_profiles,
    generate_profile_churn,
    generate_sparse_profiles,
)

__all__ = [
    "MEASURES",
    "get_measure",
    "cosine_similarity",
    "adjusted_cosine_similarity",
    "jaccard_similarity",
    "overlap_coefficient",
    "pearson_similarity",
    "euclidean_similarity",
    "ProfileStoreBase",
    "SparseProfileStore",
    "DenseProfileStore",
    "ProfileChange",
    "generate_sparse_profiles",
    "generate_dense_profiles",
    "generate_profile_churn",
]
